"""Sharded Master plane: a consistent-hash hierarchy of Masters.

The paper's Master is one aggregation point over per-site collectors
(§2.1); ``BENCH_master_scalability.json`` shows where that stops
scaling.  This module breaks the Master plane apart while keeping the
paper's *interface* intact — a :class:`ShardedMaster` is itself a
:class:`~repro.collectors.master.MasterCollector`, so the Modeler (and
any master-of-masters above it) cannot tell it is talking to a
hierarchy, exactly the "without revealing that the response was
obtained from multiple collectors" contract.

Structure:

* A deterministic :class:`ConsistentHashRing` assigns every site to one
  of ``n_shards`` shards (virtual nodes keep the split even and
  minimise movement when the shard count changes).
* Each shard gets its own sub-:class:`CollectorDirectory` (same
  collector and benchmark objects, re-registered) and one or more
  ``MasterCollector`` replicas over it.  Replicas are full masters:
  promotion after a primary crash keeps answers **fresh**, not stale,
  because the replica re-queries the still-alive site collectors.
* The ShardedMaster delegates each query's shard groups concurrently
  (``Engine.overlap`` makespan charging, same as flat fan-out), merges
  the shard fragments, and stitches the site pairs itself.  Shard
  masters see ``TopologyRequest.anchor_sites`` (anchor fragments even
  for single-site sub-queries) and ``stitch=False`` (return fragments
  unstitched): benchmark probes inject real traffic, so exactly one
  tier runs them, serially and on a monotonic clock, keeping probe
  byte-accounting — and therefore every later counter window —
  identical to the flat plane's.
* Whole-shard failure generalises the PR 4 survival machinery one tier
  up: replica chains with per-fragment deadlines and retries, shard
  quarantine, and a shard-level last-known-good cache served STALE with
  its true age when every replica is down.
* ``depth > 1`` inserts master-of-masters tiers: shards are grouped
  under intermediate ``ShardedMaster`` s; fragments pass through the
  tiers unstitched and the root stitches once.

Answers are byte-identical to the flat Master on fault-free runs (the
differential suite in ``tests/collectors/test_sharding_equivalence.py``
enforces this); under faults they are equal or better, because the
shard tier adds failover paths the flat Master does not have.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_right
from collections import defaultdict
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

from repro import obs
from repro.common.errors import CollectorTimeoutError, RemosError, UnknownHostError
from repro.common.status import QueryStatus, SiteStatus, combine
from repro.netsim.address import IPv4Address
from repro.netsim.topology import Network
from repro.collectors.base import RpcCostModel, TopologyRequest, TopologyResponse
from repro.collectors.directory import CollectorDirectory, Registration
from repro.collectors.master import MasterCollector
from repro.modeler.graph import TopologyGraph

log = obs.get_logger(__name__)

#: shard-level last-known-good shapes: (shard index, requested ips) ->
#: (graph copy, fetched_at, anchors, unresolved, involved sites)
ShardLkgKey = tuple[int, tuple[str, ...]]
ShardLkgEntry = tuple[TopologyGraph, float, dict[str, str], tuple[str, ...], tuple[str, ...]]


def _hash64(key: str) -> int:
    """Deterministic 64-bit hash (stable across processes, unlike
    ``hash()``; no RNG involved)."""
    return int.from_bytes(hashlib.md5(key.encode("utf-8")).digest()[:8], "big")


class ConsistentHashRing:
    """Consistent hashing of site names onto shard indices.

    ``vnodes`` virtual points per shard keep the partition balanced;
    adding or removing one shard moves only ~1/n of the sites, the
    property that lets a grown directory rebalance without a full
    re-registration storm.
    """

    def __init__(self, shard_ids: Sequence[int], vnodes: int = 64) -> None:
        if not shard_ids:
            raise ValueError("ring needs at least one shard")
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        points: list[tuple[int, int]] = []
        for sid in shard_ids:
            for v in range(vnodes):
                points.append((_hash64(f"shard-{sid}#{v}"), sid))
        points.sort()
        self._points = points
        self._keys = [p[0] for p in points]

    def assign(self, site: str) -> int:
        """The shard index owning ``site`` (clockwise successor)."""
        i = bisect_right(self._keys, _hash64(site)) % len(self._points)
        return self._points[i][1]


@dataclass(frozen=True)
class ShardingConfig:
    """Shape of the sharded Master plane."""

    n_shards: int = 4
    #: extra replica masters per shard beyond the primary
    replicas: int = 0
    #: virtual ring points per shard
    vnodes: int = 64
    #: hierarchy depth: 1 = shards under one root; >1 inserts
    #: master-of-masters tiers grouping ``group_fanout`` children each
    depth: int = 1
    group_fanout: int = 8
    #: overlap width for shard fan-out and cross-shard stitching
    #: (0 = unbounded — shards are independent servers)
    shard_parallel: int = 0


@dataclass(frozen=True)
class Shard:
    """One child of a ShardedMaster tier."""

    index: int
    sites: tuple[str, ...]
    #: replica chain, primary first; tried in order on failure
    masters: tuple[MasterCollector, ...]


class ShardedMaster(MasterCollector):
    """A Master whose delegation targets are shards of Masters.

    Inherits everything interface-level from :class:`MasterCollector`
    (history, forecasts, site statistics run against the full top-level
    directory exactly as the flat Master would) and overrides only the
    topology path: partition by shard, delegate concurrently through
    each shard's replica chain, merge, stitch the site pairs.
    """

    def __init__(
        self,
        name: str,
        net: Network,
        directory: CollectorDirectory,
        borders: dict[str, IPv4Address] | None,
        rpc_cost: RpcCostModel | None,
        shards: Sequence[Shard],
        ring: ConsistentHashRing,
        shard_parallel: int = 0,
    ) -> None:
        super().__init__(name, net, directory, borders, rpc_cost)
        if not shards:
            raise ValueError("sharded master needs at least one shard")
        if [s.index for s in shards] != list(range(len(shards))):
            raise ValueError("shard indices must be 0..n-1 in order")
        self.shards = tuple(shards)
        self.ring = ring
        self.shard_parallel = shard_parallel
        self._site_shard: dict[str, int] = {
            site: shard.index for shard in shards for site in shard.sites
        }
        self._shard_quarantine: dict[int, float] = {}
        self._shard_lkg: dict[ShardLkgKey, ShardLkgEntry] = {}

    # -- plumbing ------------------------------------------------------

    def iter_masters(self) -> Iterator[MasterCollector]:
        yield self
        for shard in self.shards:
            for m in shard.masters:
                yield from m.iter_masters()

    def shard_for_site(self, site: str) -> Shard:
        """The shard entry owning ``site`` (ring fallback for unknowns)."""
        idx = self._site_shard.get(site)
        if idx is None:
            idx = self.ring.assign(site) % len(self.shards)
        return self.shards[idx]

    def invalidate_sites(self, sites: Iterable[str] | None = None) -> None:
        """Site-scoped invalidation, propagated down the hierarchy."""
        wanted = None if sites is None else set(sites)
        super().invalidate_sites(wanted)
        doomed = [
            key
            for key, entry in self._shard_lkg.items()
            if wanted is None or wanted & set(entry[4])
        ]
        for key in doomed:
            del self._shard_lkg[key]
        if doomed:
            obs.counter("collectors.master.lkg_invalidated").inc(len(doomed))
        for shard in self.shards:
            if wanted is None or wanted & set(shard.sites):
                self._shard_quarantine.pop(shard.index, None)
            for m in shard.masters:
                m.invalidate_sites(wanted)

    def health(self) -> dict[str, object]:
        """Per-shard backend health (``/v1/health`` through the service)."""
        base = super().health()
        now = float(self.net.engine.now)
        base["kind"] = "sharded-master"
        base["shard_lkg_fragments"] = len(self._shard_lkg)
        base["shards"] = [
            {
                "index": shard.index,
                "sites": len(shard.sites),
                "masters": len(shard.masters),
                "down": sum(
                    1
                    for m in shard.masters
                    if m.crashed_until is not None and float(m.net.now) < m.crashed_until
                ),
                "quarantined_until": self._shard_quarantine.get(shard.index, 0.0) > now,
            }
            for shard in self.shards
        ]
        return base

    # -- the sharded topology path -------------------------------------

    def topology(self, request: TopologyRequest) -> TopologyResponse:
        self.check_alive()
        with obs.span("collectors.sharded.topology", collector=self.name):
            return self._topology(request)

    def _topology(self, request: TopologyRequest) -> TopologyResponse:
        self.queries_served += 1
        # 1. Partition addresses by owning shard (via the directory's
        # longest-prefix site resolution, then the hash assignment).
        groups: dict[int, list[str]] = defaultdict(list)
        shard_sites: dict[int, set[str]] = defaultdict(set)
        involved_sites: set[str] = set()
        unresolved: list[str] = []
        for ip_s in request.node_ips:
            try:
                reg = self.directory.lookup(ip_s)
            except UnknownHostError:
                unresolved.append(ip_s)
                continue
            idx = self._site_shard.get(reg.site)
            if idx is None:
                idx = self.ring.assign(reg.site) % len(self.shards)
            groups[idx].append(ip_s)
            shard_sites[idx].add(reg.site)
            involved_sites.add(reg.site)

        obs.histogram("collectors.sharded.fanout").observe(len(groups))
        if unresolved:
            obs.counter("collectors.master.unresolved_ips").inc(len(unresolved))
        multi_site = len(involved_sites) > 1 or request.anchor_sites
        log.debug(
            "%s: partitioned %d addresses into %d shard groups (%d sites)",
            self.name, len(request.node_ips), len(groups), len(involved_sites),
        )

        # 2. Delegate each group through its shard's replica chain,
        # concurrently across shards (the shards are independent
        # servers; the root pays per-fragment dispatch plus makespan).
        order = sorted(groups)
        subs: dict[int, TopologyResponse | None] = {}
        stats: dict[int, dict[str, SiteStatus]] = {}
        # dispatch charged after the fan-out, mirroring the flat Master:
        # measurement instants must not depend on how many shards this
        # tier happens to fan out to (see MasterCollector._topology)
        with self.net.engine.overlap(self.shard_parallel) as ov:
            for idx in order:
                with ov.task():
                    with obs.span("collectors.sharded.delegate", shard=str(idx)):
                        subs[idx], stats[idx] = self._delegate_shard(
                            self.shards[idx],
                            groups[idx],
                            sorted(shard_sites[idx]),
                            multi_site,
                            request,
                        )
        self.net.engine.advance(self.rpc.dispatch_s * len(order))
        obs.histogram("collectors.sharded.overlap_saved_s").observe(ov.saved_s)

        # 3. Merge the shard fragments (anchored, still unstitched).
        merged = TopologyGraph()
        anchors: dict[str, str] = {}
        site_status: dict[str, SiteStatus] = {}
        pdu_cost = 0
        merge_wall_s = 0.0
        data_age_s = 0.0
        for idx in order:
            site_status.update(stats[idx])
            sub = subs[idx]
            if sub is None:
                # whole shard dark and no LKG: its addresses drop out,
                # the rest of the query proceeds (partial semantics)
                unresolved.extend(groups[idx])
                continue
            t0 = obs.wall_now()
            merged.merge(sub.graph)
            merge_wall_s += obs.wall_now() - t0
            unresolved.extend(sub.unresolved)
            pdu_cost += sub.pdu_cost
            anchors.update(sub.anchors)
            data_age_s = max(data_age_s, sub.data_age_s)

        # 4. Stitch every site pair, exactly as the flat Master does:
        # serially, in sorted site order, on a monotonic clock.  Shard
        # masters returned *unstitched* fragments (``stitch=False``)
        # because benchmark probes inject real traffic — running them
        # inside rewound overlap tasks would account probe bytes into
        # SNMP counters differently than the flat plane and break
        # byte-identity.  Only the outermost tier (``request.stitch``)
        # measures; intermediate master-of-masters tiers pass through.
        site_anchor_node: dict[str, str] = {}
        if multi_site:
            for site in involved_sites:
                border = self.borders.get(site)
                node = anchors.get(str(border)) if border is not None else None
                if node is not None:
                    site_anchor_node[site] = node
                    self._anchor_sites[node] = site
            if request.stitch:
                sites = sorted(site_anchor_node)
                cross = sum(
                    1
                    for i in range(len(sites))
                    for j in range(i + 1, len(sites))
                    if self._site_shard.get(sites[i]) != self._site_shard.get(sites[j])
                )
                if cross:
                    obs.counter("collectors.sharded.cross_edges").inc(cross)
                with obs.span("collectors.sharded.stitch", collector=self.name):
                    for i in range(len(sites)):
                        for j in range(i + 1, len(sites)):
                            a_site, b_site = sites[i], sites[j]
                            self._add_wan_edge(
                                merged,
                                a_site,
                                site_anchor_node[a_site],
                                b_site,
                                site_anchor_node[b_site],
                            )

        obs.histogram("collectors.master.merge_wall_s").observe(merge_wall_s)
        obs.histogram("collectors.master.query_pdus").observe(pdu_cost)
        unresolved_t = tuple(dict.fromkeys(unresolved))
        status = combine(s.status for s in site_status.values())
        missed = set(unresolved_t) & set(request.node_ips)
        if missed:
            if len(missed) == len(request.node_ips):
                status = QueryStatus.FAILED
            else:
                status = combine([status, QueryStatus.PARTIAL])
        return TopologyResponse(
            graph=merged,
            unresolved=unresolved_t,
            pdu_cost=pdu_cost,
            anchors=anchors,
            status=status,
            site_status=site_status,
            data_age_s=data_age_s,
        )

    # -- shard delegation survival -------------------------------------

    def _delegate_shard(
        self,
        shard: Shard,
        ips: list[str],
        sites: list[str],
        multi_site: bool,
        request: TopologyRequest,
    ) -> tuple[TopologyResponse | None, dict[str, SiteStatus]]:
        """One shard delegation through its replica chain.

        Mirrors :meth:`MasterCollector._delegate` one tier up: deadline
        per attempt, replica promotion on failure, bounded retry rounds,
        shard quarantine, shard-level LKG as the last resort.  Returns
        ``(response, per-site statuses)``.
        """
        engine = self.net.engine
        sub_request = TopologyRequest(
            tuple(ips),
            include_dynamics=request.include_dynamics,
            anchor_sites=multi_site,
            stitch=False,
        )
        survival = self._survival_on()
        until = self._shard_quarantine.get(shard.index, 0.0)
        if survival and engine.now < until:
            obs.counter("collectors.master.quarantine_skips").inc()
            return self._serve_shard_lkg(shard, ips, sites, "shard quarantined", 0)

        deadline = self.rpc.fragment_timeout_s
        rounds = 1 + (self.rpc.fragment_retries if survival else 0)
        last_err: Exception | None = None
        for rnd in range(rounds):
            if rnd > 0:
                obs.counter("collectors.master.fragment_retries").inc()
                engine.advance(self.rpc.fragment_backoff_s)
            for k, master in enumerate(shard.masters):
                t0 = engine.now
                # the shard-hop RPC cost is charged on the reply path
                # so sub-masters measure at the same instants the flat
                # plane would (see MasterCollector._topology)
                try:
                    sub = master.topology(sub_request)
                except RemosError as exc:
                    engine.advance(self.rpc.local_s)
                    if deadline > 0:
                        engine.cap_since(t0, deadline)
                    last_err = exc
                    continue
                except Exception as exc:  # master bug: contain, don't abort
                    engine.advance(self.rpc.local_s)
                    log.warning("%s: shard master %s raised %r", self.name, master, exc)
                    last_err = exc
                    continue
                engine.advance(self.rpc.local_s)
                if deadline > 0 and engine.cap_since(t0, deadline):
                    obs.counter("master.fragment_timeouts").inc()
                    last_err = CollectorTimeoutError(
                        f"shard {shard.index} fragment exceeded {deadline}s deadline"
                    )
                    continue
                if k > 0:
                    # a replica answered after the primary failed — the
                    # answer is *fresh* (the replica re-queried the site
                    # collectors), not a stale LKG serve
                    obs.counter("collectors.sharded.replica_promotions").inc()
                if survival:
                    self._shard_lkg[(shard.index, tuple(sorted(ips)))] = (
                        sub.graph.copy(),
                        engine.now,
                        dict(sub.anchors),
                        tuple(sub.unresolved),
                        tuple(sites),
                    )
                self._shard_quarantine.pop(shard.index, None)
                return sub, dict(sub.site_status)

        obs.counter("collectors.sharded.shard_failures").inc()
        if survival and self.rpc.quarantine_s > 0:
            self._shard_quarantine[shard.index] = engine.now + self.rpc.quarantine_s
        if isinstance(last_err, RemosError):
            detail = str(last_err)
        else:
            detail = f"shard master error: {last_err!r}"
        log.debug(
            "%s: shard %d failed after %d attempts over %d replicas: %s",
            self.name, shard.index, rounds * len(shard.masters), len(shard.masters), detail,
        )
        return self._serve_shard_lkg(
            shard, ips, sites, detail, rounds * len(shard.masters)
        )

    def _serve_shard_lkg(
        self,
        shard: Shard,
        ips: list[str],
        sites: list[str],
        detail: str,
        attempts: int,
    ) -> tuple[TopologyResponse | None, dict[str, SiteStatus]]:
        """Last resort: the shard's last-known-good merged fragment."""
        entry = self._shard_lkg.get((shard.index, tuple(sorted(ips))))
        if entry is None:
            return None, {
                site: SiteStatus(
                    site, QueryStatus.FAILED, detail=detail, attempts=attempts
                )
                for site in sites
            }
        graph, fetched_at, lkg_anchors, lkg_unresolved, lkg_sites = entry
        obs.counter("collectors.sharded.lkg_served").inc()
        age = self.net.now - fetched_at
        statuses = {
            site: SiteStatus(
                site, QueryStatus.STALE, data_age_s=age,
                detail="shard last-known-good", attempts=attempts,
            )
            for site in lkg_sites
        }
        return (
            TopologyResponse(
                graph=graph.copy(),
                unresolved=lkg_unresolved,
                pdu_cost=0,
                anchors=dict(lkg_anchors),
                status=QueryStatus.STALE,
                data_age_s=age,
            ),
            statuses,
        )


def build_sharded_master(
    name: str,
    net: Network,
    directory: CollectorDirectory,
    borders: dict[str, IPv4Address] | None = None,
    rpc_cost: RpcCostModel | None = None,
    config: ShardingConfig | None = None,
) -> ShardedMaster:
    """Construct a sharded Master plane over an existing directory.

    Every site currently registered is hashed onto a shard; each shard
    gets a sub-directory re-registering the same collector and
    benchmark objects, and ``1 + config.replicas`` MasterCollector
    replicas over it.  All masters share one :class:`RpcCostModel`
    instance, so a survival policy armed by :func:`repro.faults.install`
    applies to every tier at once.  ``config.depth > 1`` groups shards
    under intermediate ShardedMasters (master-of-masters).
    """
    cfg = config or ShardingConfig()
    if cfg.n_shards < 1:
        raise ValueError("need at least one shard")
    if cfg.replicas < 0:
        raise ValueError("replicas must be >= 0")
    if cfg.depth < 1:
        raise ValueError("depth must be >= 1")
    if cfg.group_fanout < 2:
        raise ValueError("group_fanout must be >= 2")
    rpc = rpc_cost or RpcCostModel()
    all_borders = {k: IPv4Address(v) for k, v in (borders or {}).items()}
    ring = ConsistentHashRing(list(range(cfg.n_shards)), cfg.vnodes)
    assignment: dict[int, list[str]] = {i: [] for i in range(cfg.n_shards)}
    for site in directory.sites():
        assignment[ring.assign(site)].append(site)

    regs_by_site: dict[str, list[Registration]] = defaultdict(list)
    for reg in directory.registrations():
        regs_by_site[reg.site].append(reg)

    def subdirectory(site_list: Sequence[str]) -> CollectorDirectory:
        sub = CollectorDirectory()
        for site in site_list:
            for reg in regs_by_site.get(site, []):
                sub.register(reg.collector, list(reg.prefixes), site, reg.remote)
            bench = directory.benchmark_for(site)
            if bench is not None:
                sub.register_benchmark(bench)
        return sub

    def site_borders(site_list: Sequence[str]) -> dict[str, IPv4Address]:
        return {s: all_borders[s] for s in site_list if s in all_borders}

    shards: list[Shard] = []
    for idx in range(cfg.n_shards):
        site_list = assignment[idx]
        sub = subdirectory(site_list)
        masters = tuple(
            MasterCollector(
                f"{name}-s{idx}" + (f"-r{k}" if k else ""),
                net, sub, site_borders(site_list), rpc,
            )
            for k in range(1 + cfg.replicas)
        )
        shards.append(Shard(idx, tuple(site_list), masters))

    # master-of-masters tiers: group children, one intermediate
    # ShardedMaster per group, repeat until one tier fits the root
    tier: list[Shard] = shards
    for level in range(cfg.depth - 1):
        if len(tier) <= cfg.group_fanout:
            break
        grouped: list[Shard] = []
        for g, start in enumerate(range(0, len(tier), cfg.group_fanout)):
            group = tier[start:start + cfg.group_fanout]
            re_indexed = [
                Shard(j, sh.sites, sh.masters) for j, sh in enumerate(group)
            ]
            g_sites = [s for sh in group for s in sh.sites]
            mid = ShardedMaster(
                f"{name}-t{level}g{g}",
                net,
                subdirectory(g_sites),
                site_borders(g_sites),
                rpc,
                re_indexed,
                ring,
                cfg.shard_parallel,
            )
            grouped.append(Shard(g, tuple(g_sites), (mid,)))
        tier = grouped

    return ShardedMaster(
        name, net, directory, all_borders, rpc, tier, ring, cfg.shard_parallel
    )
