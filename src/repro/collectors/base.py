"""Collector framework: query/response types and the collector interface.

All collectors answer :class:`TopologyRequest` s with
:class:`TopologyResponse` s — per the paper, "currently only topologies
are exchanged between the Modeler and collector"; flow answers are
computed by the Modeler from topology.  The Benchmark Collector
additionally serves :class:`PairMeasurement` s to the Master, which
folds them into merged topologies as logical WAN edges.

RPC latency between components is charged to the simulation engine via
:class:`RpcCostModel`, so end-to-end query response times (Fig. 3) come
out of the same clock as everything else.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.common.errors import CollectorUnavailableError
from repro.common.status import QueryStatus, SiteStatus
from repro.netsim.address import IPv4Address
from repro.netsim.topology import Network

if TYPE_CHECKING:  # avoid a package-level import cycle with repro.modeler
    from repro.modeler.graph import TopologyGraph


@dataclass(frozen=True)
class TopologyRequest:
    """Ask for the virtual topology spanning a set of host addresses.

    ``anchor_ip`` optionally names a border router: the collector then
    also discovers each host's path *to that router* ("the path between
    a node and the edge router", §3.1.2), which is how the Master
    stitches site fragments onto inter-site measurements.
    """

    node_ips: tuple[str, ...]
    #: include dynamic utilization data (needs counter history)
    include_dynamics: bool = True
    anchor_ip: str | None = None
    #: the requester is itself a Master stitching multiple sites: the
    #: answering master must anchor every site fragment at its border
    #: even when it only sees one site of the wider query (sharded
    #: delegation; collectors without border knowledge ignore this)
    anchor_sites: bool = False
    #: stitch multi-site fragments with WAN measurements (default).
    #: A delegating Master above sets False to claim the stitching for
    #: itself: benchmark probes inject real traffic, so exactly one
    #: tier must run them — serially, on a monotonic clock — for
    #: answers to stay byte-identical to the flat Master's
    stitch: bool = True

    def __post_init__(self) -> None:
        if not self.node_ips:
            raise ValueError("topology request needs at least one node")

    @staticmethod
    def of(ips, anchor_ip: str | None = None) -> "TopologyRequest":
        return TopologyRequest(
            tuple(str(IPv4Address(ip)) for ip in ips), anchor_ip=anchor_ip
        )


@dataclass
class TopologyResponse:
    """A topology fragment plus bookkeeping about how it was obtained."""

    graph: TopologyGraph
    #: host IPs the answering collector(s) could not cover
    unresolved: tuple[str, ...] = ()
    #: diagnostic: SNMP PDUs spent answering
    pdu_cost: int = 0
    #: anchor ip -> graph node id (filled when the request had an anchor)
    anchors: dict[str, str] = field(default_factory=dict)
    #: quality of this fragment (see repro.common.status)
    status: QueryStatus = QueryStatus.OK
    #: per-site breakdown, filled by the Master on merged responses
    site_status: dict[str, SiteStatus] = field(default_factory=dict)
    #: age of the oldest dynamics served, in simulated seconds
    data_age_s: float = 0.0


@dataclass(frozen=True)
class HistoryRequest:
    """Ask for the measurement history of one topology edge.

    ``edge_a``/``edge_b`` are graph node ids from a prior topology
    response; rates are requested in the ``edge_a -> edge_b``
    direction.  This is the paper's planned XML-protocol capability:
    "the collectors will be responsible for maintaining history
    information for each component they monitor" (§3.3/§6.2), feeding
    RPS's client-server interface.
    """

    edge_a: str
    edge_b: str
    max_samples: int = 512


@dataclass
class HistoryResponse:
    """A measurement series for one edge.

    ``kind`` is ``"utilization"`` (link load from counters — subtract
    from capacity to get availability) or ``"available"`` (end-to-end
    achievable bandwidth from benchmarks — usable directly).
    """

    kind: str
    times: tuple[float, ...]
    rates_bps: tuple[float, ...]

    def __post_init__(self) -> None:
        if self.kind not in ("utilization", "available"):
            raise ValueError(f"bad history kind {self.kind!r}")
        if len(self.times) != len(self.rates_bps):
            raise ValueError("times/rates length mismatch")


@dataclass
class PairMeasurement:
    """One site-to-site benchmark result."""

    src_site: str
    dst_site: str
    throughput_bps: float
    measured_at: float
    #: measured round-trip time (0 when the probe method can't see it)
    rtt_s: float = 0.0
    stale: bool = False


@dataclass
class RpcCostModel:
    """Simulated latency charged per inter-component call.

    ``dispatch_s`` and ``max_parallel`` shape *overlapped* fan-out
    (see :meth:`repro.netsim.engine.Engine.overlap`): a Master issuing
    N concurrent sub-queries pays ``dispatch_s`` per fragment serially
    (marshalling / socket writes) and then the makespan of the
    sub-query latencies on ``max_parallel`` workers, instead of their
    sum.  ``max_parallel=1`` recovers strictly sequential delegation;
    ``max_parallel=0`` is unbounded.
    """

    local_s: float = 0.001  # modeler <-> master, master <-> local collectors
    remote_s: float = 0.05  # master <-> remote collectors
    dispatch_s: float = 0.0001  # per-fragment serialization before fan-out
    max_parallel: int = 8  # concurrent sub-queries in flight (0 = unbounded)
    # -- delegation survival policy (see repro.faults.install) --------
    #: deadline per delegated fragment; 0 disables (no deadline checks)
    fragment_timeout_s: float = 0.0
    #: retries after a failed/timed-out fragment delegation
    fragment_retries: int = 0
    #: wait between fragment retries (charged on the sim clock)
    fragment_backoff_s: float = 0.1
    #: how long a dead collector is skipped before a re-probe (0 = off)
    quarantine_s: float = 0.0


class Collector(ABC):
    """Anything that can answer a topology query about its domain."""

    def __init__(self, name: str, net: Network) -> None:
        self.name = name
        self.net = net
        #: queries served (diagnostics)
        self.queries_served = 0
        #: sim time until which this collector is crashed (None = up);
        #: set by repro.faults.crash_collector
        self.crashed_until: float | None = None

    def check_alive(self) -> None:
        """Raise :class:`CollectorUnavailableError` while crashed."""
        if self.crashed_until is not None and self.net.now < self.crashed_until:
            raise CollectorUnavailableError(
                f"collector {self.name} is down (until t={self.crashed_until:.1f})",
                agent=self.name,
            )

    @abstractmethod
    def covers(self, ip: IPv4Address) -> bool:
        """Is this collector responsible for the given address?"""

    @abstractmethod
    def topology(self, request: TopologyRequest) -> TopologyResponse:
        """Answer a topology query."""

    def history(self, request: HistoryRequest) -> HistoryResponse | None:
        """Measurement history for an edge, or None if unknown here."""
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"
