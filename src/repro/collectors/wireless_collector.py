"""Wireless Collector: cell topology and roaming from AP association
tables.

The paper lists this collector as under development (§3.1: "a collector
for wireless LANs (802.11)"); §6.2 names mobile-host support as the
driving requirement.  The design follows the Bridge Collector's shape —
walk management tables over SNMP at startup, answer location queries
from a database, monitor continuously — but the source of truth is the
basestation *association table* rather than a forwarding database, and
locations change at handoff speed rather than re-cabling speed.

Per-station bandwidth estimates use the shared-medium model: a cell's
air rate divides max-min-style among its associated stations, which is
what the virtual-switch representation of the cell implies for the
Modeler's flow calculations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import QueryError, SnmpError, TopologyError
from repro.netsim.address import IPv4Address, MacAddress
from repro.netsim.topology import Network
from repro.snmp import oid as O
from repro.snmp.agent import SnmpWorld
from repro.snmp.client import SnmpClient, SnmpCostModel


@dataclass
class CellInfo:
    """One basestation's state as last scanned."""

    name: str
    management_ip: IPv4Address
    air_rate_bps: float
    stations: tuple[MacAddress, ...]

    @property
    def station_count(self) -> int:
        return len(self.stations)

    def expected_share_bps(self) -> float:
        """Fair share of the air rate for one more station's flow."""
        return self.air_rate_bps / (self.station_count + 1)


class WirelessCollector:
    """Tracks which cell each wireless station is in."""

    def __init__(
        self,
        name: str,
        net: Network,
        world: SnmpWorld,
        source_ip: IPv4Address | str,
        basestation_ips: dict[str, IPv4Address],
        community: str = "public",
        cost: SnmpCostModel | None = None,
    ) -> None:
        self.name = name
        self.net = net
        self.client = SnmpClient(world, source_ip, community, cost)
        self.basestation_ips = dict(basestation_ips)
        self.cells: dict[str, CellInfo] = {}
        self._station_cell: dict[MacAddress, str] = {}
        self.handoffs_seen = 0

    # -- discovery -------------------------------------------------------

    def scan(self) -> dict[str, CellInfo]:
        """Walk every AP's association table; rebuild the database.

        Unreachable APs simply drop out (their stations become
        unlocatable until they reappear) — the degraded-answer
        behaviour §6.2 asks for.
        """
        cells: dict[str, CellInfo] = {}
        station_cell: dict[MacAddress, str] = {}
        for name, ip in sorted(self.basestation_ips.items()):
            try:
                rate = float(self.client.get(ip, O.WLAN_AIR_RATE))
                rows = self.client.bulk_walk(ip, O.WLAN_ASSOC_STATION)
            except SnmpError:
                continue
            macs = tuple(
                sorted((MacAddress(str(v)) for _, v in rows), key=lambda m: m.value)
            )
            cells[name] = CellInfo(name, ip, rate, macs)
            for mac in macs:
                station_cell[mac] = name
        # count moves relative to the previous scan
        for mac, cell in station_cell.items():
            old = self._station_cell.get(mac)
            if old is not None and old != cell:
                self.handoffs_seen += 1
        self.cells = cells
        self._station_cell = station_cell
        return cells

    # -- queries -------------------------------------------------------------

    def locate(self, mac: MacAddress) -> CellInfo:
        """The cell a station is associated with (from the last scan)."""
        if not self.cells:
            self.scan()
        cell_name = self._station_cell.get(mac)
        if cell_name is None:
            raise TopologyError(f"station {mac} is not associated anywhere")
        return self.cells[cell_name]

    def expected_bandwidth(self, mac: MacAddress) -> float:
        """Fair-share bandwidth estimate for a station in its cell."""
        cell = self.locate(mac)
        if cell.station_count == 0:
            raise QueryError(f"cell {cell.name} reports no stations")
        return cell.air_rate_bps / cell.station_count

    def monitor_tick(self) -> int:
        """One monitoring round: rescan, return handoffs seen so far."""
        before = self.handoffs_seen
        self.scan()
        return self.handoffs_seen - before
