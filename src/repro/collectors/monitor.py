"""Per-interface utilization monitoring from octet counters.

A :class:`LinkMonitor` samples one interface's ``ifInOctets`` /
``ifOutOctets`` over SNMP and keeps a bounded history of
``(time, in, out)`` triples.  Utilization over the last sampling
interval is the counter delta — exactly what the paper's SNMP Collector
computes every 5 seconds (§3.1.1), and what Figs. 4–5 evaluate against
ground truth.  The retained history is also the input to RPS
predictions of link bandwidth.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.common.errors import SnmpError
from repro.netsim.address import IPv4Address
from repro.snmp import oid as O
from repro.snmp.client import SnmpClient


@dataclass(frozen=True)
class MonitorKey:
    """Identity of a monitored interface: agent address + ifIndex."""

    agent_ip: str
    ifindex: int


#: 32-bit octet counters (legacy agents) wrap at this modulus
_WRAP32 = 2.0**32


def _counter_delta(prev: float, cur: float) -> float:
    """Octet delta between two readings, wrap- and reset-aware.

    A large negative jump (more than half the 32-bit range) is a
    counter wrap — the true delta continues past the modulus.  A small
    negative jump means the counter rebased (device reboot); the
    interval's traffic is unknowable, so report zero rather than a
    wildly negative (or clamp-inflated) rate.
    """
    d = cur - prev
    if d >= 0:
        return d
    if -d > _WRAP32 / 2:
        return d + _WRAP32
    return 0.0


class LinkMonitor:
    """Counter history and utilization estimates for one interface."""

    def __init__(self, key: MonitorKey, history_len: int = 720) -> None:
        self.key = key
        #: (sim time, ifInOctets, ifOutOctets) samples
        self.samples: deque[tuple[float, float, float]] = deque(maxlen=history_len)
        self.sample_failures = 0

    def sample(self, client: SnmpClient, now: float) -> bool:
        """Take one sample; returns False if the agent did not answer."""
        try:
            inb, outb = client.get_many(
                self.key.agent_ip,
                [O.IF_IN_OCTETS + self.key.ifindex, O.IF_OUT_OCTETS + self.key.ifindex],
            )
        except SnmpError:
            self.sample_failures += 1
            return False
        self.samples.append((now, float(inb), float(outb)))
        return True

    def record(self, now: float, in_octets: float, out_octets: float) -> None:
        """Store counter values fetched externally (batched polling:
        one multi-varbind PDU covers every link behind an agent, then
        the values are distributed to the monitors)."""
        self.samples.append((now, float(in_octets), float(out_octets)))

    @property
    def ready(self) -> bool:
        """Two samples are needed before a rate can be reported."""
        return len(self.samples) >= 2

    def rates_bps(self) -> tuple[float, float]:
        """(in_bps, out_bps) over the most recent sampling interval."""
        if not self.ready:
            return (0.0, 0.0)
        (t0, i0, o0), (t1, i1, o1) = self.samples[-2], self.samples[-1]
        dt = t1 - t0
        if dt <= 0:
            return (0.0, 0.0)
        return (
            _counter_delta(i0, i1) * 8.0 / dt,
            _counter_delta(o0, o1) * 8.0 / dt,
        )

    def jitter_estimate(self, capacity_bps: float, base_latency_s: float) -> float:
        """Delay-variation estimate from the utilization history.

        Each historical rate sample maps to a queueing-delay proxy
        ``base_latency * rho / (1 - rho)`` (the M/M/1 shape — delay
        grows without bound as the link saturates); jitter is the
        standard deviation of that series.  Crude, but it delivers the
        §6.2 multimedia metric from data the collector already has, and
        it is zero exactly when the link load is steady.
        """
        if not np.isfinite(capacity_bps) or capacity_bps <= 0:
            return 0.0
        delays = []
        for direction in ("in", "out"):
            _, rates = self.rate_history(direction)
            if rates.size < 2:
                continue
            rho = np.clip(rates / capacity_bps, 0.0, 0.95)
            delays.append(base_latency_s * rho / (1.0 - rho))
        if not delays:
            return 0.0
        return float(max(np.std(d) for d in delays))

    def rate_history(self, direction: str = "out") -> tuple[np.ndarray, np.ndarray]:
        """(times, rates) series of per-interval rates for prediction.

        ``direction`` is ``"in"`` or ``"out"``; times are interval
        endpoints.
        """
        if direction not in ("in", "out"):
            raise ValueError("direction must be 'in' or 'out'")
        col = 1 if direction == "in" else 2
        arr = np.asarray(self.samples, dtype=float)
        if arr.shape[0] < 2:
            return np.empty(0), np.empty(0)
        dt = np.diff(arr[:, 0])
        db = np.diff(arr[:, col])
        # wrap-aware deltas: continue 32-bit wraps, zero out resets
        db = np.where(db < -_WRAP32 / 2, db + _WRAP32, db)
        db = np.maximum(db, 0.0)
        good = dt > 0
        rates = np.zeros(db.shape)
        rates[good] = db[good] * 8.0 / dt[good]
        return arr[1:, 0], rates
