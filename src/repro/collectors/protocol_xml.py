"""Protocol v2: XML messages over an HTTP-style framing.

The paper's §6.2: "The initial implementation used a simple text format
that we would like to replace with an XML format using HTTP as a
communication protocol.  This change would give us much more
flexibility in the kinds of data we can exchange ... In particular, the
XML format will enable us to send an entire history of network
measurements to the RPS subsystem."

This module delivers that upgrade: XML codecs for topology
requests/responses **and** measurement histories (the v1 ASCII protocol
cannot carry histories), plus minimal HTTP/1.0-style request/response
framing so a byte stream between components is self-describing.

Message shapes::

    <remos version="2">
      <topology>
        <node id=".." kind=".."> <ip>..</ip>* </node>*
        <edge a=".." b=".." capacity=".." utilAB=".." utilBA=".." latency=".."/>*
      </topology>
    </remos>

    <remos version="2">
      <query dynamics="1" anchor="10.0.0.1"> <nodeip>..</nodeip>+ </query>
    </remos>

    <remos version="2">
      <history kind="utilization" a=".." b="..">
        <sample t=".." bps=".."/>*
      </history>
    </remos>
"""

from __future__ import annotations

import math
import xml.etree.ElementTree as ET

from repro.collectors.base import HistoryRequest, HistoryResponse, TopologyRequest
from repro.collectors.protocol import ProtocolError
from repro.modeler.graph import TopoEdge, TopoNode, TopologyGraph

VERSION = "2"


def _num(x: float) -> str:
    return "inf" if math.isinf(x) else repr(float(x))


def _parse_num(s: str) -> float:
    if s == "inf":
        return math.inf
    try:
        return float(s)
    except ValueError:
        raise ProtocolError(f"bad number {s!r}") from None


def _root(kind: str) -> ET.Element:
    root = ET.Element("remos", version=VERSION)
    ET.SubElement(root, kind)
    return root


def _parse_root(text: str, kind: str) -> ET.Element:
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise ProtocolError(f"malformed XML: {exc}") from exc
    if root.tag != "remos" or root.get("version") != VERSION:
        raise ProtocolError("not a remos v2 message")
    child = root.find(kind)
    if child is None:
        raise ProtocolError(f"missing <{kind}> element")
    return child


# -- topology ---------------------------------------------------------------


def encode_topology_xml(graph: TopologyGraph) -> str:
    root = _root("topology")
    topo = root[0]
    for n in graph.nodes():
        node_el = ET.SubElement(topo, "node", id=n.id, kind=n.kind)
        for ip in n.ips:
            ET.SubElement(node_el, "ip").text = ip
    for e in graph.edges():
        ET.SubElement(
            topo, "edge",
            a=e.a, b=e.b,
            capacity=_num(e.capacity_bps),
            utilAB=_num(e.util_ab_bps),
            utilBA=_num(e.util_ba_bps),
            latency=_num(e.latency_s),
            jitter=_num(e.jitter_s),
        )
    return ET.tostring(root, encoding="unicode")


def decode_topology_xml(text: str) -> TopologyGraph:
    topo = _parse_root(text, "topology")
    graph = TopologyGraph()
    for node_el in topo.findall("node"):
        nid = node_el.get("id")
        kind = node_el.get("kind")
        if nid is None or kind is None:
            raise ProtocolError("node needs id and kind")
        ips = tuple(ip.text or "" for ip in node_el.findall("ip"))
        graph.add_node(TopoNode(nid, kind, ips))
    for edge_el in topo.findall("edge"):
        attrs = {k: edge_el.get(k) for k in ("a", "b", "capacity", "utilAB", "utilBA", "latency")}
        if any(v is None for v in attrs.values()):
            raise ProtocolError("edge missing attributes")
        graph.add_edge(
            TopoEdge(
                attrs["a"], attrs["b"],
                _parse_num(attrs["capacity"]),
                _parse_num(attrs["utilAB"]),
                _parse_num(attrs["utilBA"]),
                _parse_num(attrs["latency"]),
                _parse_num(edge_el.get("jitter", "0.0")),
            )
        )
    return graph


# -- queries ------------------------------------------------------------------


def encode_request_xml(req: TopologyRequest) -> str:
    root = _root("query")
    q = root[0]
    q.set("dynamics", "1" if req.include_dynamics else "0")
    if req.anchor_ip:
        q.set("anchor", req.anchor_ip)
    for ip in req.node_ips:
        ET.SubElement(q, "nodeip").text = ip
    return ET.tostring(root, encoding="unicode")


def decode_request_xml(text: str) -> TopologyRequest:
    q = _parse_root(text, "query")
    ips = tuple(el.text or "" for el in q.findall("nodeip"))
    if not ips:
        raise ProtocolError("query without nodes")
    return TopologyRequest(
        ips,
        include_dynamics=q.get("dynamics", "1") == "1",
        anchor_ip=q.get("anchor"),
    )


# -- history ------------------------------------------------------------------


def encode_history_request_xml(req: HistoryRequest) -> str:
    root = _root("historyquery")
    h = root[0]
    h.set("a", req.edge_a)
    h.set("b", req.edge_b)
    h.set("max", str(req.max_samples))
    return ET.tostring(root, encoding="unicode")


def decode_history_request_xml(text: str) -> HistoryRequest:
    h = _parse_root(text, "historyquery")
    a, b = h.get("a"), h.get("b")
    if a is None or b is None:
        raise ProtocolError("history query needs edge endpoints")
    return HistoryRequest(a, b, int(h.get("max", "512")))


def encode_history_xml(resp: HistoryResponse, edge_a: str, edge_b: str) -> str:
    root = _root("history")
    h = root[0]
    h.set("kind", resp.kind)
    h.set("a", edge_a)
    h.set("b", edge_b)
    for t, bps in zip(resp.times, resp.rates_bps):
        ET.SubElement(h, "sample", t=_num(t), bps=_num(bps))
    return ET.tostring(root, encoding="unicode")


def decode_history_xml(text: str) -> tuple[HistoryResponse, str, str]:
    h = _parse_root(text, "history")
    kind = h.get("kind")
    a, b = h.get("a"), h.get("b")
    if kind is None or a is None or b is None:
        raise ProtocolError("history needs kind and endpoints")
    times = []
    rates = []
    for s in h.findall("sample"):
        t, bps = s.get("t"), s.get("bps")
        if t is None or bps is None:
            raise ProtocolError("bad sample")
        times.append(_parse_num(t))
        rates.append(_parse_num(bps))
    try:
        resp = HistoryResponse(kind, tuple(times), tuple(rates))
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
    return resp, a, b


# -- HTTP-ish framing --------------------------------------------------------


def http_frame(path: str, body: str, status: int | None = None) -> bytes:
    """Wrap an XML body in HTTP/1.0-style framing.

    With ``status=None`` this is a request (``POST path``); otherwise a
    response with that status code.
    """
    payload = body.encode("utf-8")
    if status is None:
        head = f"POST {path} HTTP/1.0\r\n"
    else:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(status, "")
        head = f"HTTP/1.0 {status} {reason}\r\n"
    head += "Content-Type: text/xml\r\n"
    head += f"Content-Length: {len(payload)}\r\n\r\n"
    return head.encode("ascii") + payload


def http_unframe(data: bytes) -> tuple[str, str]:
    """Parse a frame back into (path-or-status, body)."""
    try:
        head, _, rest = data.partition(b"\r\n\r\n")
        lines = head.decode("ascii").split("\r\n")
        start = lines[0]
        headers = dict(
            (k.strip().lower(), v.strip())
            for k, v in (ln.split(":", 1) for ln in lines[1:] if ":" in ln)
        )
        length = int(headers["content-length"])
        body = rest[:length].decode("utf-8")
    except (ValueError, KeyError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"malformed HTTP frame: {exc}") from exc
    if len(rest) < length:
        raise ProtocolError("truncated HTTP body")
    parts = start.split(" ")
    if parts[0] == "POST" and len(parts) >= 2:
        return parts[1], body
    if parts[0].startswith("HTTP/") and len(parts) >= 2:
        return parts[1], body
    raise ProtocolError(f"bad start line {start!r}")
