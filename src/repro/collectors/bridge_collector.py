"""Bridge Collector: L2 topology from bridge forwarding databases.

At startup the collector walks every switch's Bridge-MIB
(``dot1dTpFdbTable`` + base group) over SNMP and infers the bridged
Ethernet's topology — switches, inter-switch links, shared segments
(hubs), and host attachments — storing it in a database (paper §3.1.2).
The SNMP Collector then asks it for the L2 path between stations, or
between a station and the edge router.

Inference (a compact form of Lowekamp/O'Hallaron/Gross, SIGCOMM 2001):
with complete FDBs and every switch's *management MAC* visible as a
station (switches source SNMP replies), define ``p_A(B)`` = the port of
switch A whose FDB holds B's management MAC.  Then

* A and B share a segment through ports (q, r) iff ``p_A(B)=q``,
  ``p_B(A)=r``, and every switch C with ``p_A(C)=q`` and ``p_B(C)=r``
  sees A and B through one port (``p_C(A)=p_C(B)``) — i.e. nothing
  *separates* them.  Segment-mate pairs are unioned into maximal
  segments; a 2-switch segment with no stations is a plain link.
* a station ``m`` attaches to switch A iff every other switch C sees
  ``m`` in A's direction (``fdb_C[m] = p_C(A)``).  A station attaching
  to several switches sits on the shared segment joining them; several
  stations on one port share a hub.

The collector also monitors station locations (one FDB ``get`` per
station per period) so that moved hosts are re-attached — the wireless
/ mobile-host scenario of §3.1.2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

import networkx as nx

from repro.common.errors import NoSuchObjectError, SnmpError, TopologyError
from repro.netsim.address import IPv4Address, MacAddress
from repro.netsim.topology import Network
from repro.snmp import oid as O
from repro.snmp.agent import SnmpWorld
from repro.snmp.client import SnmpClient, SnmpCostModel


@dataclass(frozen=True)
class Attachment:
    """Where a station lives: which switch, which port."""

    switch: str
    port: int


@dataclass
class L2Segment:
    """A shared segment: ≥1 switch port and ≥0 stations on one wire."""

    id: str
    switch_ports: tuple[Attachment, ...]
    stations: tuple[MacAddress, ...]

    @property
    def is_plain_link(self) -> bool:
        return len(self.switch_ports) == 2 and not self.stations


class L2Database:
    """The inferred bridged-network topology.

    ``graph`` nodes are ``("sw", name)``, ``("seg", id)`` and
    ``("mac", str(mac))``; switch-to-segment edges carry the switch
    port, so callers can translate hops into (switch, ifIndex) pairs
    for capacity/utilization polling.
    """

    def __init__(self) -> None:
        self.graph = nx.Graph()
        self.switch_macs: dict[str, MacAddress] = {}
        self.switch_ips: dict[str, IPv4Address] = {}
        self.station_attach: dict[MacAddress, Attachment] = {}
        self.segments: dict[str, L2Segment] = {}

    def locate(self, mac: MacAddress) -> Attachment:
        try:
            return self.station_attach[mac]
        except KeyError:
            raise TopologyError(f"unknown station {mac}") from None

    def path(self, a: MacAddress, b: MacAddress) -> list[tuple]:
        """Node path from station ``a`` to station ``b``."""
        na, nb = ("mac", str(a)), ("mac", str(b))
        try:
            return nx.shortest_path(self.graph, na, nb)
        except (nx.NodeNotFound, nx.NetworkXNoPath):
            raise TopologyError(f"no L2 path {a} -> {b}") from None

    def port_between(self, switch: str, neighbor: tuple) -> int:
        """The ifIndex of ``switch``'s port on the edge toward a
        neighboring graph node."""
        return self.graph.edges[("sw", switch), neighbor]["port"]


class BridgeCollector:
    """Serves L2 location and path queries backed by Bridge-MIB data."""

    def __init__(
        self,
        name: str,
        net: Network,
        world: SnmpWorld,
        source_ip: IPv4Address | str,
        switch_ips: dict[str, IPv4Address],
        community: str = "public",
        cost: SnmpCostModel | None = None,
    ) -> None:
        self.name = name
        self.net = net
        self.world = world
        self.client = SnmpClient(world, source_ip, community, cost)
        #: switch name -> management IP to query
        self.switch_ips = dict(switch_ips)
        self.db: L2Database | None = None
        #: stations whose location monitoring noticed a move
        self.moves_seen = 0

    # -- startup discovery ------------------------------------------------

    def startup(self) -> L2Database:
        """Walk every switch's FDB and infer the topology database."""
        fdbs: dict[str, dict[MacAddress, int]] = {}
        mgmt: dict[str, MacAddress] = {}
        reachable_ips: dict[str, IPv4Address] = {}
        for name, ip in sorted(self.switch_ips.items()):
            try:
                bridge_mac = MacAddress(
                    str(self.client.get(ip, O.DOT1D_BASE_BRIDGE_ADDRESS))
                )
                ports = self.client.table_column(ip, O.DOT1D_TP_FDB_PORT)
                statuses = self.client.table_column(ip, O.DOT1D_TP_FDB_STATUS)
            except SnmpError:
                continue  # unreachable switch: simply absent from the DB
            table: dict[MacAddress, int] = {}
            for suffix, port in ports.items():
                mac = MacAddress(_suffix_to_mac_int(suffix))
                if statuses.get(suffix) == O.FDB_STATUS_SELF:
                    continue
                table[mac] = int(port)
            fdbs[name] = table
            mgmt[name] = bridge_mac
            reachable_ips[name] = ip
        self.db = infer_l2_topology(fdbs, mgmt)
        self.db.switch_ips = reachable_ips
        return self.db

    # -- queries ------------------------------------------------------------

    def _require_db(self) -> L2Database:
        if self.db is None:
            self.startup()
        assert self.db is not None
        return self.db

    def locate(self, mac: MacAddress) -> Attachment:
        return self._require_db().locate(mac)

    def path(self, a: MacAddress, b: MacAddress) -> list[tuple]:
        """L2 path between stations, from the database."""
        return self._require_db().path(a, b)

    def knows(self, mac: MacAddress) -> bool:
        db = self._require_db()
        return mac in db.station_attach

    # -- location monitoring ---------------------------------------------

    def verify_location(self, mac: MacAddress) -> bool:
        """One SNMP get: is the station still where the DB says?

        On mismatch the station is re-located (FDB gets against every
        switch) and the database updated.  Returns True if it moved.
        """
        db = self._require_db()
        att = db.locate(mac)
        ip = db.switch_ips.get(att.switch)
        if ip is None:
            return False
        try:
            port = int(self.client.get(ip, O.DOT1D_TP_FDB_PORT + mac.octets()))
        except SnmpError:
            return False
        if port == att.port:
            return False
        self._relocate(mac)
        self.moves_seen += 1
        return True

    def monitor_tick(self) -> int:
        """Verify every known station once; returns number of moves."""
        db = self._require_db()
        moves = 0
        for mac in sorted(db.station_attach, key=lambda m: m.value):
            if self.verify_location(mac):
                moves += 1
        return moves

    def _relocate(self, mac: MacAddress) -> None:
        """Re-infer one station's attachment from fresh FDB reads."""
        db = self._require_db()
        fdb_of: dict[str, int] = {}
        for name, ip in sorted(db.switch_ips.items()):
            try:
                fdb_of[name] = int(
                    self.client.get(ip, O.DOT1D_TP_FDB_PORT + mac.octets())
                )
            except SnmpError:
                continue
        new_att = _attach_from_single_mac(db, fdb_of)
        if new_att is None:
            return
        old = db.station_attach.get(mac)
        db.station_attach[mac] = new_att
        node = ("mac", str(mac))
        if node in db.graph:
            db.graph.remove_node(node)
        _wire_station(db, mac, new_att, fdb_of)


# -- inference -----------------------------------------------------------


def infer_l2_topology(
    fdbs: dict[str, dict[MacAddress, int]], mgmt: dict[str, MacAddress]
) -> L2Database:
    """Infer switch/segment/host topology from forwarding databases.

    See the module docstring for the algorithm.  Handles: plain
    switch-switch links, hubs joining ≥2 switches, hubs hanging off one
    switch port with several stations, and single-switch networks.
    """
    db = L2Database()
    switches = sorted(fdbs)
    db.switch_macs = {s: mgmt[s] for s in switches}
    mac_to_switch = {mgmt[s]: s for s in switches}
    station_macs = sorted(
        {m for t in fdbs.values() for m in t} - set(mac_to_switch),
        key=lambda m: m.value,
    )

    # p[A][B]: port of A toward B
    p: dict[str, dict[str, int]] = {a: {} for a in switches}
    for a in switches:
        for b in switches:
            if a != b and mgmt[b] in fdbs[a]:
                p[a][b] = fdbs[a][mgmt[b]]

    for s in switches:
        db.graph.add_node(("sw", s))

    # -- segment-mate pairs over switches -------------------------------
    mates = nx.Graph()
    mates.add_nodes_from(switches)
    for a, b in combinations(switches, 2):
        q, r = p[a].get(b), p[b].get(a)
        if q is None or r is None:
            continue
        separated = False
        for c in switches:
            if c in (a, b):
                continue
            if p[a].get(c) == q and p[b].get(c) == r and p[c].get(a) != p[c].get(b):
                separated = True
                break
        if not separated:
            mates.add_edge(a, b)

    # -- station attachment ------------------------------------------------
    attach_sets: dict[MacAddress, list[str]] = {}
    for m in station_macs:
        aset = []
        for a in switches:
            if m not in fdbs[a]:
                continue
            ok = True
            for c in switches:
                if c == a:
                    continue
                if fdbs[c].get(m) != p[c].get(a):
                    ok = False
                    break
            if ok:
                aset.append(a)
        attach_sets[m] = aset

    # -- build segments ------------------------------------------------------
    # Multi-switch segments from mate components.
    seg_of_switchgroup: dict[frozenset, str] = {}
    seg_counter = 0
    for comp in sorted(nx.connected_components(mates), key=lambda c: sorted(c)[0]):
        comp = sorted(comp)
        if len(comp) < 2:
            continue
        # All mate pairs within comp share wires pairwise; group by the
        # actual shared wire: (switch, port) pairs that face each other.
        for a, b in combinations(comp, 2):
            if not mates.has_edge(a, b):
                continue
            key = frozenset({(a, p[a][b]), (b, p[b][a])})
            grp = None
            for existing_key in list(seg_of_switchgroup):
                if existing_key & key:
                    grp = existing_key
                    break
            if grp is None:
                seg_of_switchgroup[key] = f"seg{seg_counter}"
                seg_counter += 1
            else:
                merged = grp | key
                seg_id = seg_of_switchgroup.pop(grp)
                seg_of_switchgroup[merged] = seg_id

    seg_ports: dict[str, set[tuple[str, int]]] = {}
    for key, seg_id in seg_of_switchgroup.items():
        seg_ports.setdefault(seg_id, set()).update(key)

    seg_stations: dict[str, set[MacAddress]] = {s: set() for s in seg_ports}

    # Single-switch station groups -> possible new segments.
    single_groups: dict[tuple[str, int], list[MacAddress]] = {}
    for m in station_macs:
        aset = attach_sets[m]
        if len(aset) >= 2:
            # station on a multi-switch shared segment; find it by port match
            a = aset[0]
            port = fdbs[a][m]
            placed = False
            for seg_id, ports in seg_ports.items():
                if (a, port) in ports:
                    seg_stations[seg_id].add(m)
                    placed = True
                    break
            if not placed:
                # inconsistent FDB data: fall back to primary attachment
                single_groups.setdefault((a, port), []).append(m)
        elif len(aset) == 1:
            a = aset[0]
            single_groups.setdefault((a, fdbs[a][m]), []).append(m)
        # len(aset) == 0: station invisible/ambiguous -> dropped

    # -- materialise graph --------------------------------------------------
    for seg_id in sorted(seg_ports):
        ports = seg_ports[seg_id]
        stations = seg_stations[seg_id]
        node = ("seg", seg_id)
        db.graph.add_node(node)
        sorted_ports = tuple(
            Attachment(s, pt) for s, pt in sorted(ports)
        )
        db.segments[seg_id] = L2Segment(
            seg_id, sorted_ports, tuple(sorted(stations, key=lambda m: m.value))
        )
        for att in sorted_ports:
            db.graph.add_edge(("sw", att.switch), node, port=att.port)
        for m in sorted(stations, key=lambda m: m.value):
            att = Attachment(sorted(ports)[0][0], sorted(ports)[0][1])
            db.station_attach[m] = att
            db.graph.add_edge(("mac", str(m)), node)

    for (sw, port), members in sorted(single_groups.items()):
        if len(members) == 1:
            m = members[0]
            db.station_attach[m] = Attachment(sw, port)
            db.graph.add_edge(("mac", str(m)), ("sw", sw), port=port)
        else:
            seg_id = f"seg{seg_counter}"
            seg_counter += 1
            node = ("seg", seg_id)
            db.graph.add_node(node)
            att = Attachment(sw, port)
            db.segments[seg_id] = L2Segment(
                seg_id, (att,), tuple(sorted(members, key=lambda m: m.value))
            )
            db.graph.add_edge(("sw", sw), node, port=port)
            for m in members:
                db.station_attach[m] = att
                db.graph.add_edge(("mac", str(m)), node)
    return db


def _attach_from_single_mac(
    db: L2Database, fdb_of: dict[str, int]
) -> Attachment | None:
    """Best-effort attachment for one MAC given its port on each switch.

    Uses the same "every other switch sees it toward A" rule, with the
    p-map reconstructed from the database graph.
    """
    switches = sorted(db.switch_macs)
    for a in switches:
        if a not in fdb_of:
            continue
        ok = True
        for c in switches:
            if c == a or c not in fdb_of:
                continue
            try:
                path = nx.shortest_path(db.graph, ("sw", c), ("sw", a))
            except (nx.NodeNotFound, nx.NetworkXNoPath):
                continue
            toward_a = db.graph.edges[path[0], path[1]].get("port")
            if toward_a is not None and fdb_of[c] != toward_a:
                ok = False
                break
        if ok:
            return Attachment(a, fdb_of[a])
    return None


def _wire_station(
    db: L2Database, mac: MacAddress, att: Attachment, fdb_of: dict[str, int]
) -> None:
    """Connect a (re)located station into the database graph."""
    node = ("mac", str(mac))
    # If the port hosts a known segment, join it; else direct edge.
    sw_node = ("sw", att.switch)
    for seg_id, seg in db.segments.items():
        if any(sp.switch == att.switch and sp.port == att.port for sp in seg.switch_ports):
            db.graph.add_edge(node, ("seg", seg_id))
            db.segments[seg_id] = L2Segment(
                seg_id,
                seg.switch_ports,
                tuple(sorted(set(seg.stations) | {mac}, key=lambda m: m.value)),
            )
            return
    db.graph.add_edge(node, sw_node, port=att.port)


def _suffix_to_mac_int(suffix: tuple[int, ...]) -> int:
    v = 0
    for b in suffix:
        v = (v << 8) | b
    return v
