"""The ASCII wire protocol between Modeler and collectors.

"The Modeler ... communicates with the Collector over a TCP socket,
using a simple ASCII protocol" (paper §3.2).  Components here run
in-process, but the codec is kept for fidelity and is exercised by
round-trip tests: a topology (or query) serialises to a line-oriented
text form and parses back to an equal object.

Grammar (one record per line, space-separated)::

    REMOS/1 TOPOLOGY
    NODE <id> <kind> [<ip>,<ip>,...]
    EDGE <a> <b> <capacity> <util_ab> <util_ba> <latency>
    END

    REMOS/1 QUERY TOPOLOGY [DYNAMICS|STATIC] [ANCHOR <ip>]
    NODEIP <ip>
    END

Identifiers are percent-encoded so embedded whitespace can't break the
framing; ``inf`` capacities serialise as the literal ``inf``.
"""

from __future__ import annotations

import math
from urllib.parse import quote, unquote

from repro.common.errors import RemosError
from repro.collectors.base import TopologyRequest
from repro.modeler.graph import TopoEdge, TopoNode, TopologyGraph

MAGIC = "REMOS/1"


class ProtocolError(RemosError):
    """Malformed wire data."""


def _enc(s: str) -> str:
    return quote(s, safe="")


def _dec(s: str) -> str:
    return unquote(s)


def _num(x: float) -> str:
    if math.isinf(x):
        return "inf"
    return repr(float(x))


def _parse_num(s: str) -> float:
    if s == "inf":
        return math.inf
    try:
        return float(s)
    except ValueError:
        raise ProtocolError(f"bad number {s!r}") from None


# -- topology --------------------------------------------------------------


def encode_topology(graph: TopologyGraph) -> str:
    lines = [f"{MAGIC} TOPOLOGY"]
    for n in graph.nodes():
        ips = ",".join(n.ips)
        lines.append(f"NODE {_enc(n.id)} {n.kind} {ips}".rstrip())
    for e in graph.edges():
        lines.append(
            f"EDGE {_enc(e.a)} {_enc(e.b)} {_num(e.capacity_bps)} "
            f"{_num(e.util_ab_bps)} {_num(e.util_ba_bps)} {_num(e.latency_s)} "
            f"{_num(e.jitter_s)}"
        )
    lines.append("END")
    return "\n".join(lines) + "\n"


def decode_topology(text: str) -> TopologyGraph:
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines or lines[0] != f"{MAGIC} TOPOLOGY":
        raise ProtocolError("missing topology header")
    if lines[-1] != "END":
        raise ProtocolError("missing END")
    graph = TopologyGraph()
    for ln in lines[1:-1]:
        parts = ln.split()
        if parts[0] == "NODE":
            if len(parts) not in (3, 4):
                raise ProtocolError(f"bad NODE line: {ln!r}")
            ips: tuple[str, ...] = ()
            if len(parts) == 4:
                ips = tuple(p for p in parts[3].split(",") if p)
            graph.add_node(TopoNode(_dec(parts[1]), parts[2], ips))
        elif parts[0] == "EDGE":
            # 7 fields = protocol v1 (no jitter); 8 = with jitter
            if len(parts) not in (7, 8):
                raise ProtocolError(f"bad EDGE line: {ln!r}")
            graph.add_edge(
                TopoEdge(
                    _dec(parts[1]),
                    _dec(parts[2]),
                    _parse_num(parts[3]),
                    _parse_num(parts[4]),
                    _parse_num(parts[5]),
                    _parse_num(parts[6]),
                    _parse_num(parts[7]) if len(parts) == 8 else 0.0,
                )
            )
        else:
            raise ProtocolError(f"unknown record {parts[0]!r}")
    return graph


# -- queries ----------------------------------------------------------------


def encode_request(req: TopologyRequest) -> str:
    mode = "DYNAMICS" if req.include_dynamics else "STATIC"
    head = f"{MAGIC} QUERY TOPOLOGY {mode}"
    if req.anchor_ip:
        head += f" ANCHOR {req.anchor_ip}"
    lines = [head]
    lines.extend(f"NODEIP {ip}" for ip in req.node_ips)
    lines.append("END")
    return "\n".join(lines) + "\n"


def decode_request(text: str) -> TopologyRequest:
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines or not lines[0].startswith(f"{MAGIC} QUERY TOPOLOGY"):
        raise ProtocolError("missing query header")
    if lines[-1] != "END":
        raise ProtocolError("missing END")
    head = lines[0].split()
    include_dynamics = "DYNAMICS" in head
    anchor = None
    if "ANCHOR" in head:
        idx = head.index("ANCHOR")
        if idx + 1 >= len(head):
            raise ProtocolError("ANCHOR without address")
        anchor = head[idx + 1]
    ips = []
    for ln in lines[1:-1]:
        parts = ln.split()
        if parts[0] != "NODEIP" or len(parts) != 2:
            raise ProtocolError(f"bad query line {ln!r}")
        ips.append(parts[1])
    if not ips:
        raise ProtocolError("query without nodes")
    return TopologyRequest(tuple(ips), include_dynamics, anchor)
