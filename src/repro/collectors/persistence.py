"""Collector state persistence: warm restarts.

Fig. 3 prices a cold cache at several times a warm one, so a collector
that loses its caches on every restart wastes exactly that difference.
These helpers serialise the *static* discovery state (topology caches,
route tables, the bridge database) to JSON; dynamic counter history is
deliberately not saved — after a restart the world has moved, and the
collector re-bootstraps dynamics the same way the "Warm-Bridge"
scenario does.
"""

from __future__ import annotations

import json
import math

from repro.common.errors import RemosError
from repro.netsim.address import IPv4Address, MacAddress
from repro.collectors.bridge_collector import (
    Attachment,
    BridgeCollector,
    L2Database,
    L2Segment,
)
from repro.collectors.monitor import MonitorKey
from repro.collectors.snmp_collector import (
    SnmpCollector,
    _EdgeRec,
    _PathRec,
    _RouteEntry,
)
from repro.modeler.graph import TopoNode
from repro.netsim.address import IPv4Network


class PersistenceError(RemosError):
    """Saved state is malformed or from an incompatible version."""


_VERSION = 1


def _num(x: float):
    return "inf" if math.isinf(x) else x


def _parse_num(x) -> float:
    return math.inf if x == "inf" else float(x)


# -- SNMP collector -----------------------------------------------------------


def save_snmp_state(coll: SnmpCollector) -> str:
    """Serialise the collector's static caches to JSON."""
    paths = {}
    for (src, dst), rec in coll._paths.items():
        paths[f"{src}|{dst}"] = {
            "nodes": [[n.id, n.kind, list(n.ips)] for n in rec.nodes],
            "edges": [
                [
                    er.a,
                    er.b,
                    er.key.agent_ip if er.key else None,
                    er.key.ifindex if er.key else None,
                    er.owner_id,
                    _num(er.capacity_bps),
                    er.latency_s,
                ]
                for er in rec.edges
            ],
        }
    routes = {
        ip: [
            [str(e.prefix), str(e.next_hop) if e.next_hop else None, e.ifindex]
            for e in entries
        ]
        for ip, entries in coll._route_tables.items()
    }
    doc = {
        "version": _VERSION,
        "kind": "snmp-collector",
        "paths": paths,
        "route_tables": routes,
        "sys_names": coll._sys_names,
        "if_speeds": {f"{k[0]}|{k[1]}": _num(v) for k, v in coll._if_speeds.items()},
        "if_macs": {
            f"{k[0]}|{k[1]}": (str(v) if v else None)
            for k, v in coll._if_macs.items()
        },
        "arp": {
            str(subnet): {ip: (str(mac) if mac else None) for ip, mac in table.items()}
            for subnet, table in coll._arp.items()
        },
        "unreachable": sorted(coll._unreachable_routers),
    }
    return json.dumps(doc)


def load_snmp_state(coll: SnmpCollector, text: str) -> None:
    """Restore static caches saved by :func:`save_snmp_state`."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"bad JSON: {exc}") from exc
    if doc.get("kind") != "snmp-collector" or doc.get("version") != _VERSION:
        raise PersistenceError("not a compatible snmp-collector state")
    coll._paths = {}
    for key, rec_doc in doc["paths"].items():
        src, _, dst = key.partition("|")
        nodes = [TopoNode(i, k, tuple(ips)) for i, k, ips in rec_doc["nodes"]]
        edges = []
        for a, b, agent_ip, ifindex, owner, cap, lat in rec_doc["edges"]:
            mk = MonitorKey(agent_ip, int(ifindex)) if agent_ip is not None else None
            edges.append(_EdgeRec(a, b, mk, owner, _parse_num(cap), lat))
        coll._paths[(src, dst)] = _PathRec(nodes, edges)
    coll._route_tables = {
        ip: [
            _RouteEntry(
                IPv4Network(p),
                IPv4Address(nh) if nh else None,
                int(idx),
            )
            for p, nh, idx in entries
        ]
        for ip, entries in doc["route_tables"].items()
    }
    coll._sys_names = dict(doc["sys_names"])
    coll._if_speeds = {
        tuple_key(k): _parse_num(v) for k, v in doc["if_speeds"].items()
    }
    coll._if_macs = {
        tuple_key(k): (MacAddress(v) if v else None)
        for k, v in doc["if_macs"].items()
    }
    coll._arp = {
        IPv4Network(subnet): {
            ip: (MacAddress(mac) if mac else None) for ip, mac in table.items()
        }
        for subnet, table in doc["arp"].items()
    }
    coll._unreachable_routers = set(doc["unreachable"])
    coll.monitors.clear()  # dynamics are always re-bootstrapped


def tuple_key(k: str) -> tuple[str, int]:
    ip, _, idx = k.rpartition("|")
    return (ip, int(idx))


# -- bridge collector ----------------------------------------------------------


def save_bridge_state(bc: BridgeCollector) -> str:
    """Serialise the bridge database (startup() must have run)."""
    db = bc.db
    if db is None:
        raise PersistenceError("bridge collector has no database yet")
    edges = []
    for a, b, data in db.graph.edges(data=True):
        edges.append([list(a), list(b), data.get("port")])
    doc = {
        "version": _VERSION,
        "kind": "bridge-collector",
        "switch_macs": {n: str(m) for n, m in db.switch_macs.items()},
        "switch_ips": {n: str(ip) for n, ip in db.switch_ips.items()},
        "station_attach": {
            str(mac): [att.switch, att.port] for mac, att in db.station_attach.items()
        },
        "segments": {
            sid: {
                "ports": [[sp.switch, sp.port] for sp in seg.switch_ports],
                "stations": [str(m) for m in seg.stations],
            }
            for sid, seg in db.segments.items()
        },
        "edges": edges,
    }
    return json.dumps(doc)


def load_bridge_state(bc: BridgeCollector, text: str) -> None:
    """Restore a bridge database saved by :func:`save_bridge_state`."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise PersistenceError(f"bad JSON: {exc}") from exc
    if doc.get("kind") != "bridge-collector" or doc.get("version") != _VERSION:
        raise PersistenceError("not a compatible bridge-collector state")
    db = L2Database()
    db.switch_macs = {n: MacAddress(m) for n, m in doc["switch_macs"].items()}
    db.switch_ips = {n: IPv4Address(ip) for n, ip in doc["switch_ips"].items()}
    db.station_attach = {
        MacAddress(m): Attachment(sw, int(port))
        for m, (sw, port) in doc["station_attach"].items()
    }
    db.segments = {
        sid: L2Segment(
            sid,
            tuple(Attachment(sw, int(p)) for sw, p in seg["ports"]),
            tuple(MacAddress(m) for m in seg["stations"]),
        )
        for sid, seg in doc["segments"].items()
    }
    for a, b, port in doc["edges"]:
        na, nb = tuple(a), tuple(b)
        if port is None:
            db.graph.add_edge(na, nb)
        else:
            db.graph.add_edge(na, nb, port=int(port))
    bc.db = db
