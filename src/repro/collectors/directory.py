"""Collector directory: which collector is responsible for which networks.

"The Master Collector maintains a database of the locations of other
collectors and the portion of the network for which they are
responsible" (paper §2.1); "the database used is very similar to the
SLP directory" (§3.1.4).  This is that database: prefix-keyed service
registrations with longest-prefix lookup, for topology collectors
(SNMP collectors or subordinate Masters) and benchmark endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import UnknownHostError
from repro.netsim.address import IPv4Address, IPv4Network
from repro.collectors.base import Collector
from repro.collectors.benchmark_collector import BenchmarkCollector


@dataclass
class Registration:
    """One collector's advertisement."""

    collector: Collector
    prefixes: tuple[IPv4Network, ...]
    #: the site label, used to pair benchmark endpoints
    site: str
    #: whether contacting this collector is a WAN round trip
    remote: bool = False


class CollectorDirectory:
    """Prefix-indexed registry of topology and benchmark collectors."""

    def __init__(self) -> None:
        self._registrations: list[Registration] = []
        self._benchmarks: dict[str, BenchmarkCollector] = {}
        #: longest-prefix index: prefix length -> {masked address int ->
        #: registration}; first registration of a prefix wins, matching
        #: the historical linear scan's tie-break
        self._index: dict[int, dict[int, Registration]] = {}
        #: (prefixlen, netmask int) pairs, most specific first
        self._masks: list[tuple[int, int]] = []

    # -- registration -------------------------------------------------------

    def register(
        self,
        collector: Collector,
        prefixes: list[IPv4Network | str],
        site: str,
        remote: bool = False,
    ) -> Registration:
        reg = Registration(
            collector,
            tuple(IPv4Network(p) for p in prefixes),
            site,
            remote,
        )
        self._registrations.append(reg)
        for p in reg.prefixes:
            self._index.setdefault(p.prefixlen, {}).setdefault(
                p.network_address.value, reg
            )
        self._masks = [
            (plen, (0xFFFFFFFF << (32 - plen)) & 0xFFFFFFFF if plen else 0)
            for plen in sorted(self._index, reverse=True)
        ]
        return reg

    def register_benchmark(self, bench: BenchmarkCollector) -> None:
        self._benchmarks[bench.site] = bench

    # -- lookup ---------------------------------------------------------------

    def lookup(self, ip: IPv4Address | str) -> Registration:
        """Longest-prefix match over all registrations.

        Indexed: one dict probe per distinct prefix length instead of a
        scan over every registration, so lookup cost stays flat as the
        directory grows to thousands of sites.
        """
        value = IPv4Address(ip).value
        for plen, mask in self._masks:
            reg = self._index[plen].get(value & mask)
            if reg is not None:
                return reg
        raise UnknownHostError(f"no collector covers {IPv4Address(ip)}")

    def benchmark_for(self, site: str) -> BenchmarkCollector | None:
        return self._benchmarks.get(site)

    def registrations(self) -> list[Registration]:
        return list(self._registrations)

    def sites(self) -> list[str]:
        return sorted({r.site for r in self._registrations})
