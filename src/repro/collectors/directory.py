"""Collector directory: which collector is responsible for which networks.

"The Master Collector maintains a database of the locations of other
collectors and the portion of the network for which they are
responsible" (paper §2.1); "the database used is very similar to the
SLP directory" (§3.1.4).  This is that database: prefix-keyed service
registrations with longest-prefix lookup, for topology collectors
(SNMP collectors or subordinate Masters) and benchmark endpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import UnknownHostError
from repro.netsim.address import IPv4Address, IPv4Network
from repro.collectors.base import Collector
from repro.collectors.benchmark_collector import BenchmarkCollector


@dataclass
class Registration:
    """One collector's advertisement."""

    collector: Collector
    prefixes: tuple[IPv4Network, ...]
    #: the site label, used to pair benchmark endpoints
    site: str
    #: whether contacting this collector is a WAN round trip
    remote: bool = False


class CollectorDirectory:
    """Prefix-indexed registry of topology and benchmark collectors."""

    def __init__(self) -> None:
        self._registrations: list[Registration] = []
        self._benchmarks: dict[str, BenchmarkCollector] = {}

    # -- registration -------------------------------------------------------

    def register(
        self,
        collector: Collector,
        prefixes: list[IPv4Network | str],
        site: str,
        remote: bool = False,
    ) -> Registration:
        reg = Registration(
            collector,
            tuple(IPv4Network(p) for p in prefixes),
            site,
            remote,
        )
        self._registrations.append(reg)
        return reg

    def register_benchmark(self, bench: BenchmarkCollector) -> None:
        self._benchmarks[bench.site] = bench

    # -- lookup ---------------------------------------------------------------

    def lookup(self, ip: IPv4Address | str) -> Registration:
        """Longest-prefix match over all registrations."""
        ip = IPv4Address(ip)
        best: tuple[int, Registration] | None = None
        for reg in self._registrations:
            for p in reg.prefixes:
                if ip in p and (best is None or p.prefixlen > best[0]):
                    best = (p.prefixlen, reg)
        if best is None:
            raise UnknownHostError(f"no collector covers {ip}")
        return best[1]

    def benchmark_for(self, site: str) -> BenchmarkCollector | None:
        return self._benchmarks.get(site)

    def registrations(self) -> list[Registration]:
        return list(self._registrations)

    def sites(self) -> list[str]:
        return sorted({r.site for r in self._registrations})
