"""A miniature Service Location Protocol (RFC 2165) directory.

"The database used is very similar to the SLP directory, and SLP may
be used by the Master Collector in the near future" (paper §3.1.4).
This module supplies that future: a Directory Agent holding service
registrations with **scopes**, **attributes**, and **lifetimes** (Remos
collectors must re-register before their lease expires, so crashed
collectors age out of the directory instead of black-holing queries).

:class:`SlpCollectorDirectory` adapts the DA to the
:class:`~repro.collectors.directory.CollectorDirectory` interface, so a
Master Collector can run off SLP without code changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import UnknownHostError
from repro.netsim.address import IPv4Address, IPv4Network
from repro.netsim.topology import Network
from repro.collectors.base import Collector
from repro.collectors.benchmark_collector import BenchmarkCollector
from repro.collectors.directory import Registration

#: Remos service types, after the "service:" URL scheme of RFC 2165
SERVICE_TOPOLOGY = "service:remos-topology"
SERVICE_BENCHMARK = "service:remos-benchmark"


@dataclass
class ServiceEntry:
    """One SLP registration."""

    service_type: str
    url: str  # unique handle, e.g. "service:remos-topology://snmp-cmu"
    scopes: tuple[str, ...]
    attributes: dict[str, object]
    expires_at: float
    #: the live object behind the URL (in-process transport)
    provider: object = None

    def expired(self, now: float) -> bool:
        return now >= self.expires_at


class DirectoryAgent:
    """The SLP DA: register, deregister, refresh, find."""

    DEFAULT_LIFETIME_S = 3600.0

    def __init__(self, net: Network) -> None:
        self.net = net
        self._services: dict[str, ServiceEntry] = {}
        self.registrations_seen = 0

    def register(
        self,
        service_type: str,
        url: str,
        provider: object,
        scopes: tuple[str, ...] = ("default",),
        attributes: dict[str, object] | None = None,
        lifetime_s: float | None = None,
    ) -> ServiceEntry:
        """SrvReg: (re-)register a service; refreshing resets the lease."""
        entry = ServiceEntry(
            service_type,
            url,
            tuple(scopes),
            dict(attributes or {}),
            self.net.now + (lifetime_s or self.DEFAULT_LIFETIME_S),
            provider,
        )
        self._services[url] = entry
        self.registrations_seen += 1
        return entry

    def deregister(self, url: str) -> None:
        """SrvDeReg (idempotent)."""
        self._services.pop(url, None)

    def refresh(self, url: str, lifetime_s: float | None = None) -> bool:
        """Extend a lease; False if the service is unknown/expired."""
        entry = self._services.get(url)
        if entry is None or entry.expired(self.net.now):
            return False
        entry.expires_at = self.net.now + (lifetime_s or self.DEFAULT_LIFETIME_S)
        return True

    def find(
        self, service_type: str, scope: str = "default"
    ) -> list[ServiceEntry]:
        """SrvRqst: all live services of a type visible in a scope."""
        self._expire()
        return sorted(
            (
                e
                for e in self._services.values()
                if e.service_type == service_type and scope in e.scopes
            ),
            key=lambda e: e.url,
        )

    def attributes(self, url: str) -> dict[str, object]:
        """AttrRqst for one service URL."""
        self._expire()
        entry = self._services.get(url)
        if entry is None:
            raise UnknownHostError(f"no service {url}")
        return dict(entry.attributes)

    def _expire(self) -> None:
        now = self.net.now
        dead = [u for u, e in self._services.items() if e.expired(now)]
        for u in dead:
            del self._services[u]

    def __len__(self) -> int:
        self._expire()
        return len(self._services)


class SlpCollectorDirectory:
    """CollectorDirectory interface backed by an SLP Directory Agent.

    Topology collectors advertise their prefixes as a service
    attribute; lookup is a fresh SrvRqst each time, so expired
    collectors disappear from routing decisions automatically.
    """

    def __init__(self, da: DirectoryAgent, scope: str = "default") -> None:
        self.da = da
        self.scope = scope

    # -- registration ---------------------------------------------------

    def register(
        self,
        collector: Collector,
        prefixes: list[IPv4Network | str],
        site: str,
        remote: bool = False,
        lifetime_s: float | None = None,
    ) -> ServiceEntry:
        return self.da.register(
            SERVICE_TOPOLOGY,
            f"{SERVICE_TOPOLOGY}://{collector.name}",
            provider=collector,
            scopes=(self.scope,),
            attributes={
                "prefixes": tuple(str(IPv4Network(p)) for p in prefixes),
                "site": site,
                "remote": remote,
            },
            lifetime_s=lifetime_s,
        )

    def register_benchmark(
        self, bench: BenchmarkCollector, lifetime_s: float | None = None
    ) -> ServiceEntry:
        return self.da.register(
            SERVICE_BENCHMARK,
            f"{SERVICE_BENCHMARK}://{bench.site}",
            provider=bench,
            scopes=(self.scope,),
            attributes={"site": bench.site},
            lifetime_s=lifetime_s,
        )

    # -- lookup ------------------------------------------------------------

    def lookup(self, ip: IPv4Address | str) -> Registration:
        ip = IPv4Address(ip)
        best: tuple[int, Registration] | None = None
        for entry in self.da.find(SERVICE_TOPOLOGY, self.scope):
            for p_str in entry.attributes.get("prefixes", ()):
                p = IPv4Network(p_str)
                if ip in p and (best is None or p.prefixlen > best[0]):
                    reg = Registration(
                        entry.provider,
                        tuple(
                            IPv4Network(x)
                            for x in entry.attributes.get("prefixes", ())
                        ),
                        str(entry.attributes.get("site", "")),
                        bool(entry.attributes.get("remote", False)),
                    )
                    best = (p.prefixlen, reg)
        if best is None:
            raise UnknownHostError(f"no collector covers {ip}")
        return best[1]

    def benchmark_for(self, site: str) -> BenchmarkCollector | None:
        for entry in self.da.find(SERVICE_BENCHMARK, self.scope):
            if entry.attributes.get("site") == site:
                return entry.provider  # type: ignore[return-value]
        return None

    def registrations(self) -> list[Registration]:
        out = []
        for entry in self.da.find(SERVICE_TOPOLOGY, self.scope):
            out.append(
                Registration(
                    entry.provider,
                    tuple(
                        IPv4Network(x) for x in entry.attributes.get("prefixes", ())
                    ),
                    str(entry.attributes.get("site", "")),
                    bool(entry.attributes.get("remote", False)),
                )
            )
        return out

    def sites(self) -> list[str]:
        return sorted({r.site for r in self.registrations()})
