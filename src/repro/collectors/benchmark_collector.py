"""Benchmark Collector: active end-to-end probing between sites.

Where SNMP access stops (WANs, other administrative domains), Remos
falls back to explicit benchmarking (paper §3.1.3): a Benchmark
Collector at each site exchanges data with its peer at the remote site
and reports the achieved throughput — the same idea as NWS.

A probe here is a real fluid transfer on the simulated network: it
competes with cross traffic under max-min sharing, takes simulated time
proportional to its size, and is visible to SNMP counters (the
"Benchmark Traffic" arrows in the paper's Fig. 2).  Collectors keep a
bounded history per peer; queries are answered from cache when fresh
(collectors "aggressively cache information"), optionally probing
on-demand when stale.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro import obs
from repro.common.errors import CollectorUnavailableError, QueryError, TopologyError
from repro.common.units import BITS_PER_BYTE
from repro.netsim.address import IPv4Address
from repro.netsim.topology import Host, Network
from repro.collectors.base import PairMeasurement


#: probe methods, in decreasing intrusiveness (paper §6.2 asks for the
#: lighter ones):
#: - "bulk": a real transfer of ``probe_bytes`` (the original Remos /
#:   NWS style); accurate, intrusive.
#: - "packet_pair": a dispersion estimate from a couple of packet
#:   trains; nearly free but noisy.
#: - "one_way": single-ended (no sink at the far site): infers only the
#:   raw bottleneck capacity, pathchar-style, and cannot see cross
#:   traffic at all.
PROBE_METHODS = ("bulk", "packet_pair", "one_way")


@dataclass
class BenchmarkConfig:
    probe_bytes: float = 1_000_000.0  # 1 MB probe transfers
    period_s: float = 60.0  # periodic probing interval
    history_len: int = 128
    #: cached results older than this are considered stale
    max_age_s: float = 120.0
    #: safety cap on how long one probe may run (slow links)
    max_probe_s: float = 30.0
    #: probe technique (see PROBE_METHODS)
    method: str = "bulk"
    #: relative noise of packet-pair estimates
    packet_pair_noise: float = 0.15
    #: bytes a packet-pair train injects
    packet_pair_bytes: float = 3_000.0
    #: bytes a single-ended probe injects
    one_way_bytes: float = 1_500.0

    def __post_init__(self) -> None:
        if self.method not in PROBE_METHODS:
            raise ValueError(f"unknown probe method {self.method!r}")


class BenchmarkCollector:
    """One site's benchmarking endpoint.

    ``host`` is the machine the collector runs on; probes are fluid
    transfers between this host and the peer collector's host.
    """

    def __init__(
        self,
        site: str,
        net: Network,
        host: Host,
        config: BenchmarkConfig | None = None,
    ) -> None:
        self.site = site
        self.net = net
        self.host = host
        self.config = config or BenchmarkConfig()
        self.peers: dict[str, BenchmarkCollector] = {}
        #: per-peer measurement history (oldest first)
        self.history: dict[str, deque[PairMeasurement]] = {}
        self.probes_run = 0
        #: probe traffic injected into the network, in bytes
        self.bytes_injected = 0.0
        self._rng = None  # lazily built, seeded per collector for determinism
        self._timer = None

    # -- peering -----------------------------------------------------------

    def add_peer(self, peer: "BenchmarkCollector") -> None:
        """Register a remote site's collector (symmetric)."""
        if peer.site == self.site:
            raise ValueError("a site cannot peer with itself")
        self.peers[peer.site] = peer
        peer.peers.setdefault(self.site, self)
        self.history.setdefault(peer.site, deque(maxlen=self.config.history_len))
        peer.history.setdefault(self.site, deque(maxlen=peer.config.history_len))

    # -- probing -----------------------------------------------------------

    def probe(self, peer_site: str) -> PairMeasurement:
        """Run one probe to a peer now (blocking, charges time).

        Dispatches on the configured method; all methods record into
        the same history and count their injected bytes so the
        intrusiveness/accuracy trade-off is measurable.
        """
        inj = getattr(self.net, "faults", None)
        if inj is not None and inj.probe_fails(self.site, peer_site):
            # the far endpoint never answered: burn the probe deadline
            self.net.engine.advance(inj.plan.probe_timeout_s)
            obs.counter("collectors.benchmark.probe_failures").inc()
            raise CollectorUnavailableError(
                f"benchmark probe {self.site} -> {peer_site} timed out",
                site=peer_site,
            )
        if self.config.method == "bulk":
            throughput = self._probe_bulk(peer_site)
        elif self.config.method == "packet_pair":
            throughput = self._probe_packet_pair(peer_site)
        else:
            throughput = self._probe_one_way(peer_site)
        meas = PairMeasurement(
            self.site, peer_site, throughput, self.net.now,
            rtt_s=self._measure_rtt(peer_site),
        )
        self.history[peer_site].append(meas)
        self.probes_run += 1
        obs.counter("collectors.benchmark.probes", method=self.config.method).inc()
        obs.histogram("collectors.benchmark.throughput_bps").observe(throughput)
        return meas

    def _measure_rtt(self, peer_site: str) -> float:
        """Ping-style RTT along the current path (propagation only —
        the fluid model has no queues, so this is the floor a real
        ping would approach)."""
        from repro.netsim.paths import compute_path, path_latency

        peer = self._peer(peer_site)
        try:
            path = compute_path(self.net, self.host, peer.host)
        except TopologyError:
            return 0.0  # no route right now: RTT simply unknown
        return 2.0 * path_latency(path)

    def _probe_bulk(self, peer_site: str) -> float:
        """A real transfer at the path's max-min rate (NWS style)."""
        peer = self._peer(peer_site)
        flow = self.net.flows.start_flow(
            self.host, peer.host, label=f"bench:{self.site}->{peer_site}"
        )
        rate = flow.rate_bps
        if rate <= 0:
            self.net.flows.stop_flow(flow)
            raise QueryError(f"no bandwidth between {self.site} and {peer_site}")
        duration = min(
            self.config.probe_bytes * BITS_PER_BYTE / rate, self.config.max_probe_s
        )
        self.net.engine.advance(duration)
        self.net.flows.stop_flow(flow)
        # achieved throughput: what the fluid flow actually moved
        moved = flow.bytes_done
        self.bytes_injected += moved
        elapsed = (flow.end_time or 0.0) - (flow.start_time or 0.0)
        return moved * BITS_PER_BYTE / elapsed if elapsed > 0 else rate

    def _probe_packet_pair(self, peer_site: str) -> float:
        """A dispersion estimate: momentary rate plus estimation noise.

        The train occupies the path only for a blink, so concurrent
        transfers are essentially undisturbed — the low-load probe
        §6.2 asks for — at the cost of a noisy reading.
        """
        from repro.common.rng import make_rng
        from repro.netsim.paths import path_latency

        if self._rng is None:
            self._rng = make_rng(hash(self.site) & 0xFFFF)
        peer = self._peer(peer_site)
        flow = self.net.flows.start_flow(
            self.host, peer.host, label=f"pp:{self.site}->{peer_site}"
        )
        rate = flow.rate_bps
        rtt = 2.0 * path_latency(flow.path)
        self.net.engine.advance(max(4.0 * rtt, 0.01))
        self.net.flows.stop_flow(flow)
        self.bytes_injected += self.config.packet_pair_bytes
        if rate <= 0:
            raise QueryError(f"no bandwidth between {self.site} and {peer_site}")
        noisy = rate * (1.0 + self.config.packet_pair_noise * float(self._rng.standard_normal()))
        return max(0.05 * rate, noisy)

    def _probe_one_way(self, peer_site: str) -> float:
        """Single-ended capacity estimate (no sink required).

        Pathchar-style per-hop probing sees the raw bottleneck link
        rate but is blind to cross traffic, so it *over-estimates*
        available bandwidth on loaded paths — the documented limitation
        of source-only tools.
        """
        from repro.netsim.paths import compute_path, path_capacity, path_latency

        peer = self._peer(peer_site)
        path = compute_path(self.net, self.host, peer.host)
        if not path:
            raise QueryError(f"no path between {self.site} and {peer_site}")
        # probing cost: a few RTTs per hop
        self.net.engine.advance(max(len(path) * 4.0 * 2.0 * path_latency(path) / max(len(path), 1), 0.01))
        self.bytes_injected += self.config.one_way_bytes
        return path_capacity(path)

    def probe_all(self) -> list[PairMeasurement]:
        """Probe every registered peer once.

        A failing probe skips that peer instead of raising — this runs
        from a periodic engine timer, where an escaped exception would
        take the whole simulation down with it.
        """
        out: list[PairMeasurement] = []
        for site in sorted(self.peers):
            try:
                out.append(self.probe(site))
            except QueryError:
                continue  # peer unreachable this round; history keeps the past
        return out

    def start_periodic(self, stagger_s: float = 0.0) -> None:
        """Begin periodic probing of all peers."""
        if self._timer is None:
            self._timer = self.net.engine.every(
                self.config.period_s,
                self.probe_all,
                start=self.net.now + self.config.period_s + stagger_s,
            )

    def stop_periodic(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -- queries ---------------------------------------------------------

    def measurement(
        self, peer_site: str, allow_probe: bool = True
    ) -> PairMeasurement:
        """Latest measurement for a peer; probes on demand if the cache
        is empty or stale (and ``allow_probe``)."""
        self._peer(peer_site)
        hist = self.history.get(peer_site)
        if hist:
            latest = hist[-1]
            age = self.net.now - latest.measured_at
            if age <= self.config.max_age_s:
                return latest
            if not allow_probe:
                return PairMeasurement(
                    latest.src_site,
                    latest.dst_site,
                    latest.throughput_bps,
                    latest.measured_at,
                    rtt_s=latest.rtt_s,
                    stale=True,
                )
        if not allow_probe:
            raise QueryError(f"no measurement {self.site} -> {peer_site}")
        try:
            return self.probe(peer_site)
        except QueryError:
            if hist:
                # probe failed now, but the past is better than nothing:
                # serve the last-known-good measurement, flagged stale
                latest = hist[-1]
                return PairMeasurement(
                    latest.src_site,
                    latest.dst_site,
                    latest.throughput_bps,
                    latest.measured_at,
                    rtt_s=latest.rtt_s,
                    stale=True,
                )
            raise

    def statistics(self, peer_site: str) -> tuple[float, float, int]:
        """(mean, stddev, n) of historical throughput to a peer, in bps."""
        hist = self.history.get(peer_site)
        if not hist:
            raise QueryError(f"no history {self.site} -> {peer_site}")
        vals = [m.throughput_bps for m in hist]
        n = len(vals)
        mean = sum(vals) / n
        var = sum((v - mean) ** 2 for v in vals) / n if n > 1 else 0.0
        return mean, math.sqrt(var), n

    def _peer(self, peer_site: str) -> "BenchmarkCollector":
        try:
            return self.peers[peer_site]
        except KeyError:
            raise QueryError(f"{self.site} has no benchmark peer {peer_site!r}") from None
