"""Remos collectors: SNMP, Bridge, Benchmark, and Master.

Collectors "acquire and consolidate the information needed by the
application" (paper §2.1).  The SNMP Collector handles routed networks,
the Bridge Collector switched Ethernet, the Benchmark Collector opaque
WANs; the Master Collector partitions queries across them and merges
the answers.
"""

from repro.collectors.base import (
    Collector,
    HistoryRequest,
    HistoryResponse,
    PairMeasurement,
    RpcCostModel,
    TopologyRequest,
    TopologyResponse,
)
from repro.collectors.benchmark_collector import BenchmarkCollector, BenchmarkConfig
from repro.collectors.bridge_collector import (
    Attachment,
    BridgeCollector,
    L2Database,
    L2Segment,
    infer_l2_topology,
)
from repro.collectors.directory import CollectorDirectory, Registration
from repro.collectors.master import MasterCollector
from repro.collectors.monitor import LinkMonitor, MonitorKey
from repro.collectors.persistence import (
    load_bridge_state,
    load_snmp_state,
    save_bridge_state,
    save_snmp_state,
)
from repro.collectors.slp import DirectoryAgent, SlpCollectorDirectory
from repro.collectors.snmp_collector import SnmpCollector, SnmpCollectorConfig
from repro.collectors.wireless_collector import CellInfo, WirelessCollector

__all__ = [
    "Collector",
    "HistoryRequest",
    "HistoryResponse",
    "PairMeasurement",
    "RpcCostModel",
    "TopologyRequest",
    "TopologyResponse",
    "BenchmarkCollector",
    "BenchmarkConfig",
    "Attachment",
    "BridgeCollector",
    "L2Database",
    "L2Segment",
    "infer_l2_topology",
    "CollectorDirectory",
    "Registration",
    "MasterCollector",
    "LinkMonitor",
    "MonitorKey",
    "SnmpCollector",
    "SnmpCollectorConfig",
    "CellInfo",
    "WirelessCollector",
    "DirectoryAgent",
    "SlpCollectorDirectory",
    "load_bridge_state",
    "load_snmp_state",
    "save_bridge_state",
    "save_snmp_state",
]
