"""Adaptive video streaming (the paper's §5.5 application).

"The video server is able to adapt the outgoing video stream to the
available bandwidth by intelligently dropping frames of lower
importance.  It thereby maximizes the numbers of frames that are
transmitted correctly."

The model: an MPEG-like stream with a repeating GOP pattern of I/P/B
frames.  Per adaptation interval the server observes the bandwidth its
flow actually gets (max-min fluid rate), spends that byte budget on
frames in priority order (I > P > B; within a class, earlier first),
and drops the rest.  The client timestamps arrivals and can report its
perceived bandwidth averaged over arbitrary windows — the Fig. 11
analysis — and the count of correctly received frames — the Fig. 10
metric.

``server_efficiency < 1`` models an overloaded server that fails to
push its full share ("the server only sent about half of the packets,
probably due to a high load on the server").
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.common.rng import make_rng
from repro.common.units import BITS_PER_BYTE
from repro.netsim.flows import Flow
from repro.netsim.topology import Host, Network

#: frame kind priorities, lower = more important
_PRIORITY = {"I": 0, "P": 1, "B": 2}


@dataclass
class VideoSpec:
    """A frame-structured stream.

    Frame sizes follow the GOP pattern with a content modulation (a
    slow sinusoid plus noise) so instantaneous bitrate fluctuates the
    way real movie content does — the fluctuation Fig. 11 shows at
    small averaging windows.
    """

    duration_s: float = 30.0
    fps: float = 24.0
    gop: str = "IBBPBBPBBPBB"
    #: bytes of an I frame at modulation 1.0
    i_frame_bytes: float = 6000.0
    p_fraction: float = 0.4
    b_fraction: float = 0.15
    #: peak-to-peak fraction of the content modulation
    content_swing: float = 0.5
    content_period_s: float = 8.0
    noise_frac: float = 0.1
    seed: int = 0

    def frames(self) -> list[tuple[float, str, float]]:
        """All frames as (display time, kind, size bytes)."""
        rng = make_rng(self.seed)
        n = int(self.duration_s * self.fps)
        out = []
        for k in range(n):
            t = k / self.fps
            kind = self.gop[k % len(self.gop)]
            base = {
                "I": self.i_frame_bytes,
                "P": self.i_frame_bytes * self.p_fraction,
                "B": self.i_frame_bytes * self.b_fraction,
            }[kind]
            mod = 1.0 + 0.5 * self.content_swing * math.sin(
                2 * math.pi * t / self.content_period_s
            )
            mod *= 1.0 + self.noise_frac * float(rng.standard_normal())
            out.append((t, kind, max(1.0, base * mod)))
        return out

    def nominal_rate_bps(self) -> float:
        """Long-run average bitrate of the full stream."""
        frames = self.frames()
        total = sum(sz for _, _, sz in frames)
        return total * BITS_PER_BYTE / self.duration_s


@dataclass
class ReceivedFrame:
    time_s: float
    kind: str
    size_bytes: float


@dataclass
class VideoResult:
    """Client-side outcome of one streaming session."""

    total_frames: int
    received: list[ReceivedFrame]
    #: (interval end time, bytes delivered in interval)
    deliveries: list[tuple[float, float]]

    @property
    def frames_received(self) -> int:
        return len(self.received)

    def perceived_bandwidth(self, window_s: float) -> tuple[np.ndarray, np.ndarray]:
        """Client-measured bandwidth averaged over ``window_s`` windows.

        Returns (window end times, bps).  This is the Fig. 11 analysis:
        small windows show content fluctuation, large windows match the
        Remos-reported rate.
        """
        if not self.deliveries:
            return np.empty(0), np.empty(0)
        times = np.array([t for t, _ in self.deliveries])
        bytes_ = np.array([b for _, b in self.deliveries])
        t_end = times.max()
        t_start = times.min()
        edges = np.arange(t_start, t_end + window_s, window_s)
        if edges.size < 2:
            edges = np.array([t_start, t_end])
        idx = np.searchsorted(edges, times, side="right") - 1
        idx = np.clip(idx, 0, edges.size - 2)
        sums = np.zeros(edges.size - 1)
        np.add.at(sums, idx, bytes_)
        widths = np.diff(edges)
        rates = sums * BITS_PER_BYTE / widths
        ends = edges[1:]
        # drop a trailing partial window: it under-reports the rate
        complete = ends <= t_end + 1e-9
        if complete.any():
            return ends[complete], rates[complete]
        return ends, rates


class VideoSession:
    """One server -> client adaptive streaming run.

    Drive it with :meth:`run` (pumps the engine until the stream ends).
    Adaptation happens every ``adapt_interval_s``: the server sends the
    highest-priority frames that fit into the bytes its flow carried in
    the last interval.
    """

    def __init__(
        self,
        net: Network,
        server: Host,
        client: Host,
        spec: VideoSpec,
        adapt_interval_s: float = 0.5,
        server_efficiency: float = 1.0,
        label: str = "video",
    ) -> None:
        if not 0.0 < server_efficiency <= 1.0:
            raise ValueError("server_efficiency must be in (0, 1]")
        self.net = net
        self.server = server
        self.client = client
        self.spec = spec
        self.adapt_interval_s = adapt_interval_s
        self.server_efficiency = server_efficiency
        self.label = label
        self._frames = spec.frames()
        self._flow: Flow | None = None
        self._result: VideoResult | None = None

    def run(self) -> VideoResult:
        """Stream the whole video; returns the client's result."""
        received: list[ReceivedFrame] = []
        deliveries: list[tuple[float, float]] = []
        t_start = self.net.now
        demand = self.spec.nominal_rate_bps() * 1.5  # headroom for peaks
        flow = self.net.flows.start_flow(
            self.server, self.client, demand_bps=demand, label=self.label
        )
        self._flow = flow
        pending = list(self._frames)  # (display time, kind, size)
        carried = 0.0  # leftover byte budget (sub-frame remainders)
        elapsed = 0.0
        while elapsed < self.spec.duration_s and pending:
            interval = min(self.adapt_interval_s, self.spec.duration_s - elapsed)
            bytes_before = flow.bytes_done
            self.net.engine.run_until(t_start + elapsed + interval)
            self.net.flows._settle(flow)
            budget = (flow.bytes_done - bytes_before) * self.server_efficiency
            budget += carried
            elapsed += interval
            # frames due in this interval
            due = [f for f in pending if f[0] < elapsed]
            pending = [f for f in pending if f[0] >= elapsed]
            # priority order: I, P, B; within class by display time
            due.sort(key=lambda f: (_PRIORITY[f[1]], f[0]))
            sent_bytes = 0.0
            for t, kind, size in due:
                if sent_bytes + size <= budget:
                    sent_bytes += size
                    received.append(ReceivedFrame(t, kind, size))
            carried = min(budget - sent_bytes, self.spec.i_frame_bytes)
            deliveries.append((t_start + elapsed, sent_bytes))
        self.net.flows.stop_flow(flow)
        received.sort(key=lambda f: f.time_s)
        self._result = VideoResult(len(self._frames), received, deliveries)
        return self._result


class HandoffVideoSession:
    """Adaptive streaming with mid-stream server handoff.

    "[Remos] might similarly be used to determine alternate servers and
    routes for a dynamic video handoff" (§5.5, pointing at Karrer &
    Gross).  Every ``recheck_s`` the client re-queries Remos for the
    available bandwidth to every replica; if another server offers at
    least ``switch_factor`` times the current one, the stream hands
    off — paying ``handoff_gap_s`` of dead air, during which no frames
    are delivered.
    """

    def __init__(
        self,
        modeler,
        net: Network,
        client: Host,
        servers: dict[str, Host],
        spec: VideoSpec,
        start_site: str | None = None,
        recheck_s: float = 5.0,
        switch_factor: float = 1.5,
        handoff_gap_s: float = 1.0,
        adapt_interval_s: float = 0.5,
    ) -> None:
        if not servers:
            raise ValueError("need at least one server")
        from repro.session import RemosSession

        self.modeler = modeler
        self.session = RemosSession(modeler)
        self.net = net
        self.client = client
        self.servers = dict(servers)
        self.spec = spec
        self.recheck_s = recheck_s
        self.switch_factor = switch_factor
        self.handoff_gap_s = handoff_gap_s
        self.adapt_interval_s = adapt_interval_s
        self.start_site = start_site
        #: (time, from site, to site) for each handoff performed
        self.handoffs: list[tuple[float, str, str]] = []

    def _best_site(self) -> tuple[str, dict[str, float]]:
        reported = {}
        for site, server in sorted(self.servers.items()):
            reported[site] = self.session.flow_info(server, self.client).available_bps
        best = max(sorted(reported), key=lambda s: reported[s])
        return best, reported

    def run(self) -> tuple[str, VideoResult]:
        """Stream with handoffs; returns (final site, client result)."""
        current, _ = (
            (self.start_site, None) if self.start_site else self._best_site()
        )
        received: list[ReceivedFrame] = []
        deliveries: list[tuple[float, float]] = []
        frames = self.spec.frames()
        pending = list(frames)
        t_start = self.net.now
        elapsed = 0.0
        carried = 0.0
        demand = self.spec.nominal_rate_bps() * 1.5
        flow = self.net.flows.start_flow(
            self.servers[current], self.client, demand_bps=demand,
            label=f"video:{current}",
        )
        next_check = self.recheck_s
        bytes_last = flow.bytes_done
        while elapsed < self.spec.duration_s and pending:
            target = t_start + min(
                elapsed + self.adapt_interval_s, self.spec.duration_s
            )
            if self.net.now < target:
                self.net.engine.run_until(target)
            self.net.flows._settle(flow)
            budget = (flow.bytes_done - bytes_last) + carried
            bytes_last = flow.bytes_done
            # anchor on the simulation clock: mid-stream Remos queries
            # (probes) consume real time too
            elapsed = self.net.now - t_start
            due = [f for f in pending if f[0] < elapsed]
            pending = [f for f in pending if f[0] >= elapsed]
            due.sort(key=lambda f: (_PRIORITY[f[1]], f[0]))
            sent = 0.0
            for t, kind, size in due:
                if sent + size <= budget:
                    sent += size
                    received.append(ReceivedFrame(t, kind, size))
            carried = min(budget - sent, self.spec.i_frame_bytes)
            deliveries.append((t_start + elapsed, sent))
            if elapsed >= next_check and elapsed < self.spec.duration_s:
                next_check += self.recheck_s
                best, reported = self._best_site()
                # Baseline = what this stream actually receives now, not
                # the residual Remos reports for the current server: the
                # stream's own traffic depresses that residual (§6.3 —
                # during execution, fine-tune on direct measurements).
                getting = min(flow.rate_bps, demand)
                if (
                    best != current
                    and reported[best] >= self.switch_factor * max(getting, 1.0)
                ):
                    # hand off: dead air while the new stream starts
                    self.net.flows.stop_flow(flow)
                    gap = min(self.handoff_gap_s, self.spec.duration_s - elapsed)
                    self.net.engine.run_until(self.net.now + gap)
                    elapsed = self.net.now - t_start
                    pending = [f for f in pending if f[0] >= elapsed]
                    self.handoffs.append((self.net.now, current, best))
                    current = best
                    carried = 0.0
                    flow = self.net.flows.start_flow(
                        self.servers[current], self.client, demand_bps=demand,
                        label=f"video:{current}",
                    )
                    bytes_last = flow.bytes_done
        self.net.flows.stop_flow(flow)
        received.sort(key=lambda f: f.time_s)
        return current, VideoResult(len(frames), received, deliveries)


def choose_and_stream(
    modeler,
    net: Network,
    client: Host,
    servers: dict[str, Host],
    spec: VideoSpec,
    efficiencies: dict[str, float] | None = None,
    consider_load: bool = False,
    load_threshold: float = 2.0,
) -> tuple[str, dict[str, VideoResult]]:
    """The Fig. 10 experiment step: query Remos for bandwidth to every
    server, stream from each in decreasing reported order, return the
    picked server and all results.

    ``consider_load=True`` addresses the paper's own diagnosis of its
    two mispicks ("the server only sent about half of the packets,
    probably due to a high load on the server … other parameters may
    influence the download as well and must be taken into account"):
    the client also issues Remos *node* queries, and any server whose
    load exceeds ``load_threshold`` is demoted below the responsive
    ones regardless of its bandwidth.
    """
    from repro.session import RemosSession

    session = RemosSession(modeler)
    efficiencies = efficiencies or {}
    reported: dict[str, float] = {}
    loads: dict[str, float] = {}
    degraded: set[str] = set()
    for site, server in sorted(servers.items()):
        ans = session.flow_info(server, client)
        if ans.degraded:
            # degraded answers already self-report lower bandwidth; the
            # flag only breaks ties so a blind spot never outranks an
            # equally-fast site Remos actually measured
            degraded.add(site)
        reported[site] = ans.available_bps
        if consider_load:
            [node] = session.node_info([server])
            loads[site] = node.load if node.load is not None else 0.0
    if consider_load:
        order = sorted(
            reported,
            key=lambda s: (
                loads.get(s, 0.0) > load_threshold,
                -reported[s],
                s in degraded,
                s,
            ),
        )
    else:
        order = sorted(reported, key=lambda s: (-reported[s], s in degraded, s))
    results: dict[str, VideoResult] = {}
    for site in order:
        session = VideoSession(
            net, servers[site], client, spec,
            server_efficiency=efficiencies.get(site, 1.0),
            label=f"video:{site}",
        )
        results[site] = session.run()
    return order[0], results
