"""Mirror-server selection (the paper's §5.4 application).

"A simple application that reads a 3MB file from a server after using
network information obtained from Remos to choose the best server from
a set of replicas."  To evaluate selection quality, a trial downloads
the file from *every* replica, starting with the one Remos ranked best,
and compares achieved throughputs — exactly the paper's methodology,
including the *effective bandwidth* metric that charges the Remos query
time against the chosen server's transfer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import QueryError, RemosError
from repro.netsim.topology import Host, Network
from repro.netsim.traffic import FileTransfer
from repro.modeler.api import Modeler

#: the paper's file size: 3 MB
DEFAULT_FILE_BYTES = 3_000_000


@dataclass
class TrialResult:
    """Outcome of one selection-plus-download trial."""

    #: sites ordered by Remos-ranked bandwidth, best first
    ranking: tuple[str, ...]
    #: Remos-reported available bandwidth per site
    reported_bps: dict[str, float]
    #: achieved transfer throughput per site
    achieved_bps: dict[str, float]
    #: simulated seconds the Remos query took
    query_time_s: float

    @property
    def chosen(self) -> str:
        return self.ranking[0]

    @property
    def fastest(self) -> str:
        return max(self.achieved_bps, key=lambda s: self.achieved_bps[s])

    @property
    def chose_best(self) -> bool:
        return self.chosen == self.fastest


class MirrorClient:
    """The selection application: query Remos, rank, download from all."""

    def __init__(
        self,
        modeler: Modeler,
        net: Network,
        client: Host,
        servers: dict[str, Host],
        file_bytes: float = DEFAULT_FILE_BYTES,
        transfer_timeout_s: float = 600.0,
    ) -> None:
        from repro.session import RemosSession

        if not servers:
            raise ValueError("need at least one server")
        self.modeler = modeler
        self.session = RemosSession(modeler)
        self.net = net
        self.client = client
        self.servers = dict(servers)
        self.file_bytes = file_bytes
        self.transfer_timeout_s = transfer_timeout_s
        self.trials: list[TrialResult] = []
        #: site -> status string for sites whose last ranking query came
        #: back degraded (STALE/PARTIAL/FAILED); reset by rank_servers
        self.degraded_sites: dict[str, str] = {}

    def rank_servers(self) -> tuple[dict[str, float], float]:
        """Ask Remos for available bandwidth to every replica.

        Returns (site -> bps, query seconds).  Sites whose query fails
        are reported with 0 bandwidth — the application still works
        when the monitoring system has blind spots.
        """
        t0 = self.net.now
        reported: dict[str, float] = {}
        self.degraded_sites = {}
        for site, server in sorted(self.servers.items()):
            try:
                # non-strict: a FAILED answer reports 0 bps by itself
                ans = self.session.flow_info(server, self.client)
                if ans.degraded:
                    # blind-spot tolerance, made visible: the ranking
                    # still uses what Remos could say, but the caller
                    # can audit which sites were ranked on degraded data
                    self.degraded_sites[site] = str(ans.status)
                reported[site] = ans.available_bps
            except (QueryError, RemosError):
                reported[site] = 0.0
        return reported, self.net.now - t0

    def download_from(self, site: str) -> float:
        """Fetch the file from one replica; returns achieved bps."""
        server = self.servers[site]
        xfer = FileTransfer(
            self.net, server, self.client, self.file_bytes,
            label=f"mirror:{site}",
        )
        xfer.start()
        deadline = self.net.now + self.transfer_timeout_s
        while not xfer.complete and self.net.now < deadline:
            if not self.net.engine.step():
                break
        if not xfer.complete:
            if xfer.flow is not None:
                self.net.flows.stop_flow(xfer.flow)
            return 0.0
        return xfer.throughput_bps

    def run_trial(self) -> TrialResult:
        """One full trial: rank, then download from every replica in
        decreasing reported-bandwidth order."""
        reported, query_s = self.rank_servers()
        ranking = tuple(
            sorted(reported, key=lambda s: (-reported[s], s))
        )
        achieved = {site: self.download_from(site) for site in ranking}
        result = TrialResult(ranking, reported, achieved, query_s)
        self.trials.append(result)
        return result

    # -- aggregate statistics (Figs. 8-9 rows) ---------------------------

    def best_pick_rate(self) -> float:
        """Fraction of trials where Remos chose the fastest replica."""
        if not self.trials:
            return 0.0
        return sum(t.chose_best for t in self.trials) / len(self.trials)

    def effective_bandwidth(self, trial: TrialResult) -> float:
        """Chosen-site throughput charged with the query time."""
        chosen_bps = trial.achieved_bps[trial.chosen]
        if chosen_bps <= 0:
            return 0.0
        transfer_s = self.file_bytes * 8.0 / chosen_bps
        return self.file_bytes * 8.0 / (transfer_s + trial.query_time_s)

    def rank_averages(self) -> list[float]:
        """Average achieved bandwidth by Remos rank (rank 0 = chosen).

        These are the per-rank bars of Figs. 8 and 9.
        """
        if not self.trials:
            return []
        n_sites = len(self.servers)
        sums = [0.0] * n_sites
        for t in self.trials:
            for rank, site in enumerate(t.ranking):
                sums[rank] += t.achieved_bps[site]
        return [s / len(self.trials) for s in sums]
