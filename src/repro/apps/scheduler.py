"""Compute-node selection: the paper's third application class.

§6.3: "for applications … that have to select and assign a set of
compute nodes with certain connectivity properties, or that have to
make critical configuration decisions …, Remos provides explicit
connectivity information that would be difficult and expensive to
collect otherwise."

:class:`NodeSelector` is that application: given candidate hosts and a
:class:`JobSpec` (node count, minimum pairwise bandwidth, latency and
load ceilings), it asks Remos for node loads and a summary topology,
and greedily grows the best-connected node set.  ``verify=True`` then
prices the chosen set with a *joint* flow query (all pairs at once), so
the reported bandwidth accounts for the job's own flows contending —
the difference between per-pair bottlenecks and what a collective
application actually gets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import combinations

from repro.common.errors import QueryError, TopologyError


@dataclass(frozen=True)
class JobSpec:
    """What the application needs from its node set."""

    n_nodes: int
    min_pair_bandwidth_bps: float = 0.0
    max_latency_s: float = math.inf
    max_load: float = math.inf

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("a node set needs at least 2 nodes")


@dataclass
class Placement:
    """The chosen node set and its connectivity properties."""

    hosts: tuple[str, ...]
    #: worst per-pair bottleneck bandwidth within the set
    min_pair_bandwidth_bps: float
    #: worst per-pair latency within the set
    max_latency_s: float
    #: highest node load within the set (0 when loads unknown)
    max_load: float
    #: joint all-pairs max-min rate (set by verify; None otherwise)
    verified_joint_bps: float | None = None


class NodeSelector:
    """Greedy node-set selection over Remos answers."""

    def __init__(self, modeler, candidates) -> None:
        from repro.session import RemosSession

        if len(candidates) < 2:
            raise ValueError("need at least two candidate hosts")
        self.modeler = modeler
        self.session = RemosSession(modeler)
        self.candidates = list(candidates)

    def select(self, spec: JobSpec, verify: bool = False) -> Placement:
        """Pick ``spec.n_nodes`` hosts maximizing the worst pairwise
        bandwidth subject to the constraints.

        Raises :class:`~repro.common.errors.QueryError` when no
        feasible set exists among the candidates.
        """
        from repro.modeler.api import _ip_of

        if spec.n_nodes > len(self.candidates):
            raise QueryError(
                f"need {spec.n_nodes} nodes, only {len(self.candidates)} candidates"
            )
        # 1. load filter (node queries)
        loads: dict[str, float] = {}
        eligible = []
        try:
            answers = self.session.node_info(self.candidates)
        except QueryError:
            answers = None
        if answers is not None:
            for host, ans in zip(self.candidates, answers):
                load = ans.load if ans.load is not None else 0.0
                loads[_ip_of(host)] = load
                if load <= spec.max_load:
                    eligible.append(host)
        else:
            eligible = list(self.candidates)
        if len(eligible) < spec.n_nodes:
            raise QueryError("too few nodes under the load ceiling")

        # 2. pairwise connectivity (summary topology query)
        summary = self.session.topology(eligible, detail="summary").graph
        ips = [_ip_of(h) for h in eligible]

        def pair_bw(a: str, b: str) -> float:
            if not summary.has_edge(a, b):
                return 0.0
            e = summary.edge(a, b)
            return min(e.available_from(a), e.available_from(b))

        def pair_lat(a: str, b: str) -> float:
            if not summary.has_edge(a, b):
                return math.inf
            return summary.edge(a, b).latency_s

        def ok(a: str, b: str) -> bool:
            return (
                pair_bw(a, b) >= spec.min_pair_bandwidth_bps
                and pair_lat(a, b) <= spec.max_latency_s
            )

        # 3. greedy: best feasible seed pair, then grow by max-min gain
        seed = None
        best_seed_bw = -1.0
        for a, b in combinations(ips, 2):
            if ok(a, b) and pair_bw(a, b) > best_seed_bw:
                best_seed_bw = pair_bw(a, b)
                seed = (a, b)
        if seed is None:
            raise QueryError("no host pair satisfies the connectivity constraints")
        chosen = list(seed)
        while len(chosen) < spec.n_nodes:
            best, best_score = None, -1.0
            for cand in ips:
                if cand in chosen:
                    continue
                if not all(ok(cand, m) for m in chosen):
                    continue
                score = min(pair_bw(cand, m) for m in chosen)
                if score > best_score:
                    best, best_score = cand, score
            if best is None:
                raise QueryError(
                    f"cannot grow the node set past {len(chosen)} under the constraints"
                )
            chosen.append(best)

        min_bw = min(pair_bw(a, b) for a, b in combinations(chosen, 2))
        max_lat = max(pair_lat(a, b) for a, b in combinations(chosen, 2))
        max_load = max((loads.get(ip, 0.0) for ip in chosen), default=0.0)
        placement = Placement(tuple(chosen), min_bw, max_lat, max_load)

        if verify:
            pairs = list(combinations(chosen, 2))
            joint = self.session.flow_info_many(pairs)
            placement.verified_joint_bps = min(a.available_bps for a in joint)
        return placement
