"""The paper's applications: mirror-server selection and adaptive video."""

from repro.apps.mirror import DEFAULT_FILE_BYTES, MirrorClient, TrialResult
from repro.apps.scheduler import JobSpec, NodeSelector, Placement
from repro.apps.video import (
    HandoffVideoSession,
    ReceivedFrame,
    VideoResult,
    VideoSession,
    VideoSpec,
    choose_and_stream,
)

__all__ = [
    "DEFAULT_FILE_BYTES",
    "MirrorClient",
    "TrialResult",
    "JobSpec",
    "NodeSelector",
    "Placement",
    "HandoffVideoSession",
    "ReceivedFrame",
    "VideoResult",
    "VideoSession",
    "VideoSpec",
    "choose_and_stream",
]
