"""RemosSession: the documented application entry point to Remos.

The paper's API gives applications three questions — flow information,
topology, and node (compute-resource) information.  This facade asks
them through a :class:`~repro.modeler.api.Modeler` and always answers
with the status-carrying ``Answer`` family: every result reports a
:class:`~repro.common.status.QueryStatus`, the age of the data behind
it, and which sites contributed (provenance).

Unlike the deprecated ``Modeler.flow_query`` / ``topology_query`` /
``node_query`` methods, a session never raises just because part of
the network stopped answering: failed pairs come back as ``FAILED``
answers with zeroed bandwidths, partially-covered topologies come back
``PARTIAL`` with the reachable fragments merged, and last-known-good
data is served ``STALE``.  Exceptions are reserved for caller mistakes
(bad detail level, no provider configured) and for a completely
unreachable Master.

    session = deployment.session()
    ans = session.flow_info("10.1.0.1", "10.2.0.7")
    if ans.ok:
        plan_transfer(ans.available_bps)
    elif ans.degraded:
        log.warning("degraded answer: %s (age %.1fs)", ans.status, ans.data_age_s)

Every session call opens a *root span* (``session.flow_info`` etc.)
when a live metrics registry is installed, so the entire causal tree
below it — modeler, Master delegation per site, individual SNMP PDUs
and retries — shares one ``trace_id``, which is also stamped into each
answer.  Degraded answers are reported to the registry's flight
recorder (if one is attached; see :mod:`repro.obs.flightrec`), which
dumps the trace evidence for post-mortem rendering with
``repro trace``.
"""

from __future__ import annotations

from repro import obs
from repro.modeler.api import (
    Answer,
    FlowAnswer,
    Modeler,
    NodeAnswer,
    TopologyAnswer,
)

__all__ = ["RemosSession"]


class RemosSession:
    """One application's Remos handle, wrapping a Modeler."""

    def __init__(self, modeler: Modeler) -> None:
        self.modeler = modeler

    @staticmethod
    def _finish(answers: list) -> None:
        """Report degraded answers to the flight recorder, if attached.

        Called after the root span has closed, so the dump sees the
        complete causal tree for the trace.
        """
        recorder = obs.get_registry().flight_recorder
        if recorder is None:
            return
        for ans in answers:
            if isinstance(ans, Answer) and ans.degraded:
                recorder.on_answer(ans)

    # -- flows ---------------------------------------------------------

    def flow_info(
        self, src, dst, predict: bool = False, horizon_steps: int = 1
    ) -> FlowAnswer:
        """Expected bandwidth for one new flow src -> dst."""
        with obs.span("session.flow_info"):
            answers = self.modeler._flow_answers(
                [(src, dst)], predict, horizon_steps, None, strict=False
            )
        self._finish(answers)
        return answers[0]

    def flow_info_many(
        self,
        pairs,
        predict: bool = False,
        horizon_steps: int = 1,
        own_flows=None,
    ) -> list[FlowAnswer]:
        """Expected bandwidth for simultaneous new flows (joint max-min).

        ``own_flows`` declares the application's existing traffic as
        ``(src, dst, rate_bps)`` triples so it is not mistaken for
        competing load (see Modeler docs).
        """
        with obs.span("session.flow_info_many"):
            answers = self.modeler._flow_answers(
                pairs, predict, horizon_steps, own_flows, strict=False
            )
        self._finish(answers)
        return answers

    # -- topology ------------------------------------------------------

    def topology(
        self, hosts, detail: str = "simplified", include_dynamics: bool = True
    ) -> TopologyAnswer:
        """The virtual topology spanning ``hosts``.

        ``detail`` is ``"raw"``, ``"simplified"``, or ``"summary"``;
        hosts no collector could cover are listed in
        ``answer.unresolved`` and reflected in ``answer.status``.
        """
        with obs.span("session.topology", detail=detail):
            answer = self.modeler._topology_answer(
                hosts, detail, include_dynamics, strict=False
            )
        self._finish([answer])
        return answer

    # -- nodes ---------------------------------------------------------

    def node_info(
        self, hosts, predict: bool = False, horizon_steps: int = 1
    ) -> list[NodeAnswer]:
        """Current (and optionally forecast) load of compute nodes."""
        with obs.span("session.node_info"):
            answers = self.modeler._node_answers(hosts, predict, horizon_steps)
        self._finish(answers)
        return answers

    # -- plumbing ------------------------------------------------------

    def invalidate_cache(self, sites=None) -> None:
        """Drop the Modeler's memoized Master responses.

        Pass ``sites`` (site names) to scope the eviction to answers
        that actually depended on those sites; other memoized answers
        survive.  Same name and signature as
        :meth:`repro.modeler.api.Modeler.invalidate_cache`, which it
        forwards to.
        """
        self.modeler.invalidate_cache(sites)

    def __repr__(self) -> str:
        return f"RemosSession({self.modeler!r})"
