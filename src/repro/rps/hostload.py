"""Synthetic host-load traces.

The paper's host-load results build on real traces of Unix load average
(Dinda, "The statistical properties of host load"): load is
long-range dependent / self-similar and well modelled by AR(16) or
better.  We cannot ship those traces, so this module generates
synthetic loads with the same statistical character:

* :func:`fgn` — exact fractional Gaussian noise by Davies-Harte
  circulant embedding, Hurst parameter H (long-range dependence for
  H > 0.5).
* :func:`ar_trace` — a stationary AR(p) process with prescribed
  coefficients (the short-memory component).
* :func:`host_load_trace` — the shipped composite: positive, epochal
  (occasional mean shifts, another property Dinda reports), fGn +
  AR-correlated texture.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import make_rng


def fgn(n: int, hurst: float, seed=None) -> np.ndarray:
    """Fractional Gaussian noise, unit variance, via Davies-Harte.

    Exact for any stationary covariance the circulant embedding keeps
    non-negative definite — always true for fGn autocovariances.
    """
    if not 0.0 < hurst < 1.0:
        raise ValueError("hurst must be in (0, 1)")
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = make_rng(seed)
    if abs(hurst - 0.5) < 1e-12:
        return rng.standard_normal(n)
    # autocovariance of fGn increments
    k = np.arange(n + 1, dtype=float)
    gamma = 0.5 * (
        np.abs(k + 1) ** (2 * hurst)
        - 2 * np.abs(k) ** (2 * hurst)
        + np.abs(k - 1) ** (2 * hurst)
    )
    # first row of the circulant embedding of the (n+1)x(n+1) Toeplitz
    row = np.concatenate([gamma, gamma[-2:0:-1]])
    eig = np.fft.fft(row).real
    eig = np.maximum(eig, 0.0)  # clamp tiny negative round-off
    m = row.size
    w = rng.standard_normal(m) + 1j * rng.standard_normal(m)
    f = np.fft.fft(np.sqrt(eig / (2.0 * m)) * w)
    return f.real[:n] * np.sqrt(2.0)


def ar_trace(
    n: int, phi: np.ndarray, sigma: float = 1.0, seed=None, burn_in: int = 200
) -> np.ndarray:
    """A stationary AR(p) sample path with coefficients ``phi``."""
    phi = np.asarray(phi, dtype=float)
    p = phi.size
    rng = make_rng(seed)
    total = n + burn_in
    x = np.zeros(total + p)
    noise = rng.normal(0.0, sigma, total)
    for t in range(total):
        x[t + p] = np.dot(phi, x[t : t + p][::-1]) + noise[t]
    return x[p + burn_in :]


def host_load_trace(
    n: int,
    mean: float = 1.0,
    hurst: float = 0.8,
    texture_scale: float = 0.3,
    epoch_mean_s: float = 600.0,
    epoch_jump: float = 0.5,
    smoothing_s: float = 0.0,
    dt: float = 1.0,
    seed=None,
) -> np.ndarray:
    """A synthetic load-average trace (positive, self-similar, epochal).

    ``epoch_mean_s`` controls how often the baseline level jumps
    (exponential epoch lengths); ``texture_scale`` scales the fGn
    component relative to the mean.  ``smoothing_s`` applies the
    exponential filter the Unix kernel uses to compute load averages
    (time constant in seconds; 0 disables) — real /proc loadavg series
    are EWMA-smoothed demand, which is what makes them predictable out
    to tens of seconds (Dinda & O'Hallaron).
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = make_rng(seed)
    base = fgn(n, hurst, rng) * texture_scale * mean
    # epochal mean shifts
    level = np.empty(n)
    t = 0
    current = mean
    while t < n:
        length = max(1, int(rng.exponential(epoch_mean_s / dt)))
        level[t : t + length] = current
        current = max(0.1 * mean, current + rng.normal(0.0, epoch_jump * mean))
        t += length
    trace = np.maximum(level + base, 0.0)
    if smoothing_s > 0.0:
        alpha = float(np.exp(-dt / smoothing_s))
        out = np.empty_like(trace)
        acc = trace[0]
        for i, v in enumerate(trace):
            acc = alpha * acc + (1.0 - alpha) * v
            out[i] = acc
        trace = out
    return trace
