"""Autocovariance and differencing utilities for RPS models."""

from __future__ import annotations

import numpy as np

from repro.common.errors import ModelFitError


def acvf(x: np.ndarray, max_lag: int) -> np.ndarray:
    """Sample autocovariances gamma(0..max_lag) (biased, 1/n norm).

    Computed via FFT so fitting AR(16) on long histories stays cheap —
    the divisor ``n`` (not ``n-k``) keeps the covariance sequence
    non-negative definite, which Levinson-Durbin and the innovations
    algorithm require.
    """
    x = np.asarray(x, dtype=float)
    n = x.size
    if n < 2:
        raise ModelFitError("need at least 2 observations for autocovariance")
    if max_lag >= n:
        raise ModelFitError(f"max_lag {max_lag} >= series length {n}")
    xc = x - x.mean()
    nfft = 1 << int(np.ceil(np.log2(2 * n - 1)))
    f = np.fft.rfft(xc, nfft)
    acov = np.fft.irfft(f * np.conj(f), nfft)[: max_lag + 1] / n
    return acov


def acf(x: np.ndarray, max_lag: int) -> np.ndarray:
    """Sample autocorrelations rho(0..max_lag)."""
    g = acvf(x, max_lag)
    if g[0] <= 0:
        raise ModelFitError("zero-variance series has no autocorrelation")
    return g / g[0]


def difference(x: np.ndarray, d: int) -> np.ndarray:
    """Apply (1-B)^d: d rounds of first differencing."""
    x = np.asarray(x, dtype=float)
    if d < 0:
        raise ValueError("d must be >= 0")
    for _ in range(d):
        if x.size < 2:
            raise ModelFitError("series too short to difference")
        x = np.diff(x)
    return x


def undifference_forecasts(
    forecasts: np.ndarray, last_values: np.ndarray, d: int
) -> np.ndarray:
    """Integrate forecasts of a d-times differenced series back to the
    original scale.  ``last_values`` are the final ``d`` observations of
    each intermediate differencing level, outermost first (as returned
    by :func:`difference_levels`)."""
    f = np.asarray(forecasts, dtype=float)
    for level in range(d - 1, -1, -1):
        f = last_values[level] + np.cumsum(f)
    return f


def difference_levels(x: np.ndarray, d: int) -> tuple[np.ndarray, np.ndarray]:
    """Difference d times, also returning the last value of each level.

    Returns (differenced series, last_values) where ``last_values[k]``
    is the final observation after ``k`` rounds of differencing — what
    :func:`undifference_forecasts` needs to integrate back.
    """
    x = np.asarray(x, dtype=float)
    lasts = np.empty(d)
    for k in range(d):
        if x.size < 2:
            raise ModelFitError("series too short to difference")
        lasts[k] = x[-1]
        x = np.diff(x)
    return x, lasts


def fractional_diff_weights(d: float, n: int) -> np.ndarray:
    """Coefficients pi_0..pi_{n-1} of (1-B)^d (pi_0 = 1).

    pi_j = pi_{j-1} * (j - 1 - d) / j — the binomial expansion used for
    fractional differencing in ARFIMA models.
    """
    if n < 1:
        raise ValueError("need n >= 1")
    w = np.empty(n)
    w[0] = 1.0
    for j in range(1, n):
        w[j] = w[j - 1] * (j - 1 - d) / j
    return w


def fractional_difference(x: np.ndarray, d: float) -> np.ndarray:
    """Apply the truncated fractional differencing filter (1-B)^d."""
    x = np.asarray(x, dtype=float)
    w = fractional_diff_weights(d, x.size)
    # y_t = sum_{j<=t} pi_j x_{t-j}: a causal convolution
    return np.convolve(x, w)[: x.size]
