"""RPS prediction runtimes: streaming and client-server.

"Predictors can operate in a client-server mode, turning a vector of
measurements into a single vector of predictions, or in a streaming
mode, transforming a stream of measurements into a stream of
(vector-valued) predictions.  The advantage of the client-server form
is that it is stateless, while the advantage of the streaming mode is
that a single model fitting operation can be amortized over multiple
predictions" (paper §2.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.common.errors import ModelFitError, PredictionError
from repro.rps.evaluator import Evaluator
from repro.rps.models.base import Forecast, Model, parse_model


@dataclass
class PredictionResponse:
    """What a client-server request returns."""

    spec: str
    forecast: Forecast


class ClientServerPredictor:
    """Stateless request-response prediction.

    Every request pays the full fit + predict cost; nothing is retained
    between calls — exactly the trade-off Fig. 7 quantifies.
    """

    def __init__(self, default_spec: str = "AR(16)") -> None:
        self.default_spec = default_spec
        self.requests_served = 0

    def request(
        self, history: np.ndarray, horizon: int, spec: str | None = None
    ) -> PredictionResponse:
        """Fit ``spec`` to ``history`` and forecast ``horizon`` steps."""
        model = parse_model(spec or self.default_spec)
        t0 = obs.wall_now()
        fitted = model.fit(np.asarray(history, dtype=float))
        obs.histogram("rps.fit.wall_s", spec=model.spec).observe(
            obs.wall_now() - t0
        )
        self.requests_served += 1
        obs.counter("rps.requests", mode="client_server").inc()
        return PredictionResponse(fitted.spec, fitted.forecast(horizon))


class StreamingPredictor:
    """Stateful streaming prediction with evaluator-driven refitting.

    Fit once, then each ``observe`` absorbs one measurement and returns
    the forecast vector; the embedded :class:`Evaluator` monitors
    one-step error and triggers a refit on the trailing window when the
    fit stops holding.
    """

    def __init__(
        self,
        spec: str,
        history: np.ndarray,
        horizon: int = 1,
        refit_window: int = 600,
        refit_tolerance: float = 2.0,
    ) -> None:
        self.model: Model = parse_model(spec)
        self.horizon = horizon
        self._window = list(np.asarray(history, dtype=float)[-refit_window:])
        self._refit_window = refit_window
        if len(self._window) < 2:
            raise PredictionError("streaming predictor needs history to fit")
        t0 = obs.wall_now()
        self.fitted = self.model.fit(np.asarray(self._window))
        obs.histogram("rps.fit.wall_s", spec=self.model.spec).observe(
            obs.wall_now() - t0
        )
        self.evaluator = Evaluator(self.fitted, refit_tolerance=refit_tolerance)
        self.refits = 0
        self.samples_seen = 0

    def observe(self, value: float) -> Forecast:
        """Absorb one measurement, maybe refit, return the forecast."""
        self.samples_seen += 1
        self._window.append(float(value))
        if len(self._window) > self._refit_window:
            self._window.pop(0)
        self.evaluator.observe(float(value))
        if self.evaluator.needs_refit():
            self._refit()
        return self.fitted.forecast(self.horizon)

    def _refit(self) -> None:
        t0 = obs.wall_now()
        try:
            self.fitted = self.model.fit(np.asarray(self._window))
        except ModelFitError:
            return  # degenerate window: keep the old fit
        obs.histogram("rps.fit.wall_s", spec=self.model.spec).observe(
            obs.wall_now() - t0
        )
        obs.counter("rps.streaming.refits", spec=self.model.spec).inc()
        self.evaluator = Evaluator(
            self.fitted,
            window=self.evaluator.window,
            refit_tolerance=self.evaluator.refit_tolerance,
        )
        self.refits += 1

    def forecast(self) -> Forecast:
        """Current forecast without absorbing a new measurement."""
        return self.fitted.forecast(self.horizon)
