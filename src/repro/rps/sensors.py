"""RPS sensors: periodic measurement sources feeding predictors.

"In the current implementation, Remos relies on RPS collecting data
itself ... through a host load sensor and a network flow bandwidth
sensor (the latter is itself a Remos application)" (paper §3.3).

* :class:`HostLoadSensor` samples a simulated host's load average at a
  fixed rate and feeds an attached :class:`StreamingPredictor`.
* :class:`FlowBandwidthSensor` periodically issues a Remos flow query
  through a Modeler and streams the available-bandwidth answers — the
  "Remos application" flavour of sensor.

Both track the cumulative *CPU cost* of measurement + prediction so the
Fig. 6 experiment (CPU usage vs measurement rate) can be reproduced: the
cost of each step is measured with a real process-time clock and then
charged against the sampling period.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.common.status import QueryStatus
from repro.netsim.topology import Host, Network
from repro.rps.predictor import StreamingPredictor


@dataclass
class SensorStats:
    samples: int = 0
    #: real CPU seconds spent in measurement + prediction
    cpu_seconds: float = 0.0
    #: last forecast values
    last_forecast: np.ndarray | None = None


class HostLoadSensor:
    """Samples ``host.load`` periodically into a streaming predictor."""

    def __init__(
        self,
        net: Network,
        host: Host,
        predictor: StreamingPredictor,
        rate_hz: float = 1.0,
    ) -> None:
        if rate_hz <= 0:
            raise ValueError("rate must be positive")
        self.net = net
        self.host = host
        self.predictor = predictor
        self.period_s = 1.0 / rate_hz
        self.stats = SensorStats()
        self._timer = None

    def start(self) -> None:
        if self._timer is None:
            self._timer = self.net.engine.every(self.period_s, self.tick)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def tick(self) -> None:
        """One measurement -> prediction step (callable directly in tests)."""
        value = self.host.load(self.net.now)
        t0 = obs.cpu_now()
        fc = self.predictor.observe(value)
        self.stats.cpu_seconds += obs.cpu_now() - t0
        self.stats.samples += 1
        self.stats.last_forecast = fc.values

    def cpu_fraction(self) -> float:
        """Fraction of one CPU consumed at the configured rate."""
        if self.stats.samples == 0:
            return 0.0
        per_sample = self.stats.cpu_seconds / self.stats.samples
        return per_sample / self.period_s


class SnmpHostLoadSensor:
    """Host-load sensing over SNMP (hrProcessorLoad).

    The alternative to the local :class:`HostLoadSensor`: a *remote*
    monitor polls the host's Host Resources MIB, paying SNMP PDUs per
    sample and seeing the load quantised to integer percent.  Useful
    when the monitoring system cannot run code on the measured node.
    """

    def __init__(
        self,
        client,
        host_ip,
        predictor: StreamingPredictor | None = None,
        rate_hz: float = 1.0,
        engine=None,
    ) -> None:
        if rate_hz <= 0:
            raise ValueError("rate must be positive")
        from repro.snmp import oid as O

        self._oid = O.HR_PROCESSOR_LOAD + 1
        self.client = client
        self.host_ip = str(host_ip)
        self.predictor = predictor
        self.period_s = 1.0 / rate_hz
        self.engine = engine if engine is not None else client.world.net.engine
        self.stats = SensorStats()
        self.samples: list[tuple[float, float]] = []
        self._timer = None

    def start(self) -> None:
        if self._timer is None:
            self._timer = self.engine.every(self.period_s, self.tick)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def tick(self) -> None:
        from repro.common.errors import SnmpError

        try:
            pct = float(self.client.get(self.host_ip, self._oid))
        except SnmpError:
            return  # unreachable this round: skip the sample
        load = pct / 100.0
        self.samples.append((self.engine.now, load))
        self.stats.samples += 1
        if self.predictor is not None:
            t0 = obs.cpu_now()
            fc = self.predictor.observe(load)
            self.stats.cpu_seconds += obs.cpu_now() - t0
            self.stats.last_forecast = fc.values


class FlowBandwidthSensor:
    """Periodically issues flow queries and streams the answers.

    This sensor *is* a Remos application: it exercises the full
    Modeler -> Master -> collectors path on every sample.  Being an
    application, it consumes the session API from *above* — callers
    hand it a session-like object (anything with ``flow_info`` and a
    ``modeler``, normally ``deployment.session()``); the rps layer
    never constructs a session itself, which would invert the layer
    DAG (rps sits below the session facade).
    """

    def __init__(
        self,
        session,
        src,
        dst,
        predictor: StreamingPredictor | None = None,
        period_s: float = 10.0,
    ) -> None:
        if not hasattr(session, "flow_info"):
            raise TypeError(
                "FlowBandwidthSensor takes a session-like object with a "
                ".flow_info method (e.g. deployment.session()), not a "
                f"bare {type(session).__name__!r}"
            )
        self.session = session
        self.modeler = session.modeler
        self.src = src
        self.dst = dst
        self.predictor = predictor
        self.period_s = period_s
        self.samples: list[tuple[float, float]] = []  # (time, available bps)
        self.stats = SensorStats()
        self._timer = None

    def start(self) -> None:
        if self._timer is None:
            self._timer = self.modeler.net.engine.every(self.period_s, self.tick)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def tick(self) -> None:
        ans = self.session.flow_info(self.src, self.dst)
        if ans.status is QueryStatus.FAILED:
            # the strict path used to raise here; record no sample and
            # keep the timer alive so sensing resumes with the network
            return
        self.samples.append((self.modeler.net.now, ans.available_bps))
        self.stats.samples += 1
        if self.predictor is not None:
            t0 = obs.cpu_now()
            fc = self.predictor.observe(ans.available_bps)
            self.stats.cpu_seconds += obs.cpu_now() - t0
            self.stats.last_forecast = fc.values

    def series(self) -> np.ndarray:
        return np.array([v for _, v in self.samples], dtype=float)
