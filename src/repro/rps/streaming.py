"""Streaming predictors attached to collectors.

Paper §2.3: "For environments where predictions can be shared,
streaming predictors offer the ability to amortize the cost of
prediction over several consumers.  Streaming predictors operate in
tandem with collectors … As each sample became available, it would be
fed to a directly attached streaming predictor.  The collector would
then make these predictions available to modelers that were
interested."

:class:`StreamingPredictionManager` attaches to an
:class:`~repro.collectors.snmp_collector.SnmpCollector`: after every
polling sweep it feeds each monitored link's fresh rate sample into a
per-(link, direction) :class:`~repro.rps.predictor.StreamingPredictor`.
Modelers then read forecasts without paying a model fit per query —
the other side of the client-server/streaming trade-off Fig. 7 prices.

This lives in ``repro.rps`` (not ``repro.collectors``) because the
dependency points *up* the stack: the manager consumes a collector's
poll hooks and drives RPS predictors, so placing it beside the
predictors keeps the collectors layer free of any knowledge of
prediction (the RML101 layer contract).  The metric names keep their
historical ``collectors.streaming.*`` prefix — they describe where the
samples are observed, and renaming them would orphan dashboards.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.common.errors import PredictionError
from repro.collectors.base import HistoryRequest
from repro.collectors.monitor import MonitorKey
from repro.rps.predictor import StreamingPredictor


class StreamingPredictionManager:
    """Per-link streaming predictors fed by a collector's poll loop."""

    def __init__(
        self,
        collector,
        spec: str = "AR(16)",
        horizon: int = 10,
        min_history: int = 32,
    ) -> None:
        self.collector = collector
        self.spec = spec
        self.horizon = horizon
        self.min_history = min_history
        #: (MonitorKey, direction) -> StreamingPredictor
        self.predictors: dict[tuple[MonitorKey, str], StreamingPredictor] = {}
        self._fed: dict[tuple[MonitorKey, str], int] = {}
        self.samples_fed = 0
        collector.post_poll_hooks.append(self.on_poll)
        collector.streaming = self

    def on_poll(self) -> None:
        """Feed the newest sample of every ready monitor."""
        for key, mon in self.collector.monitors.items():
            if not mon.ready:
                continue
            for direction in ("in", "out"):
                pkey = (key, direction)
                _, rates = mon.rate_history(direction)
                if rates.size == 0:
                    continue
                sp = self.predictors.get(pkey)
                if sp is None:
                    if rates.size < self.min_history:
                        continue
                    try:
                        sp = StreamingPredictor(
                            self.spec, rates[:-1], horizon=self.horizon
                        )
                    except PredictionError:
                        continue
                    self.predictors[pkey] = sp
                    self._fed[pkey] = rates.size - 1
                fed = self._fed.get(pkey, 0)
                for value in rates[fed:]:
                    sp.observe(float(value))
                    self.samples_fed += 1
                    obs.counter("collectors.streaming.samples_fed").inc()
                self._fed[pkey] = rates.size
        obs.gauge("collectors.streaming.predictors").set(len(self.predictors))

    def forecast_edge(
        self, request: HistoryRequest, horizon: int
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Forecast utilization for an edge (request direction), using
        the already-fitted streaming predictor — no fit at query time."""
        for rec in self.collector._paths.values():
            for er in rec.edges:
                if er.key is None or {er.a, er.b} != {request.edge_a, request.edge_b}:
                    continue
                direction = "out" if er.owner_id == request.edge_a else "in"
                sp = self.predictors.get((er.key, direction))
                if sp is None:
                    continue
                fc = sp.forecast()
                k = min(horizon, fc.values.size)
                if k < 1:
                    continue
                return fc.values[:k], fc.variances[:k]
        return None
