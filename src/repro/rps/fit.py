"""Model fitting algorithms: Yule-Walker/Levinson-Durbin, the
innovations algorithm, Hannan-Rissanen, and the GPH long-memory
estimator.

These are the classical procedures (Box-Jenkins; Brockwell & Davis)
that the RPS toolkit's "rigorous time series prediction theory" rests
on (paper §6.1).  Implementations are pure numpy; Levinson-Durbin is
O(p²) rather than the O(p³) of solving the Toeplitz system directly.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ModelFitError
from repro.rps.acf import acvf


def levinson_durbin(gamma: np.ndarray) -> tuple[np.ndarray, float]:
    """Solve the Yule-Walker equations for AR(p).

    ``gamma`` holds autocovariances gamma(0..p).  Returns
    ``(phi[1..p], sigma2)``: the AR coefficients and the innovation
    variance.
    """
    gamma = np.asarray(gamma, dtype=float)
    p = gamma.size - 1
    if p < 1:
        raise ModelFitError("need at least gamma(0) and gamma(1)")
    if gamma[0] <= 0:
        raise ModelFitError("non-positive variance")
    phi = np.zeros(p)
    prev = np.zeros(p)
    v = gamma[0]
    for k in range(p):
        if v <= 0:
            raise ModelFitError("Levinson-Durbin broke down (singular system)")
        acc = gamma[k + 1] - np.dot(prev[:k], gamma[k:0:-1])
        refl = acc / v
        phi[:k] = prev[:k] - refl * prev[:k][::-1]
        phi[k] = refl
        v *= 1.0 - refl * refl
        prev[: k + 1] = phi[: k + 1]
    return phi, float(max(v, 0.0))


def yule_walker(x: np.ndarray, order: int) -> tuple[np.ndarray, float, float]:
    """Fit AR(order) to data: returns (phi, sigma2, mean)."""
    x = np.asarray(x, dtype=float)
    if x.size <= order + 1:
        raise ModelFitError(f"AR({order}) needs more than {order + 1} points")
    mu = float(x.mean())
    gamma = acvf(x, order)
    if gamma[0] <= 1e-300:
        # constant series: degenerate but predictable
        return np.zeros(order), 0.0, mu
    phi, sigma2 = levinson_durbin(gamma)
    return phi, sigma2, mu


def innovations(gamma: np.ndarray, m: int) -> tuple[np.ndarray, np.ndarray]:
    """The innovations algorithm (Brockwell & Davis prop. 5.2.2).

    Given autocovariances gamma(0..m), computes the triangular array
    ``theta[n, j]`` (n = 1..m, j = 1..n) and mean-square errors
    ``v[0..m]`` of the best linear one-step predictors.  Used to fit
    MA(q) models: theta[m, 1..q] estimates the MA coefficients.
    """
    gamma = np.asarray(gamma, dtype=float)
    if gamma.size < m + 1:
        raise ModelFitError("not enough autocovariances for innovations")
    v = np.zeros(m + 1)
    theta = np.zeros((m + 1, m + 1))
    v[0] = gamma[0]
    if v[0] <= 0:
        raise ModelFitError("non-positive variance")
    for n in range(1, m + 1):
        for k in range(n):
            s = 0.0
            for j in range(k):
                s += theta[k, k - j] * theta[n, n - j] * v[j]
            theta[n, n - k] = (gamma[n - k] - s) / v[k]
        s = 0.0
        for j in range(n):
            s += theta[n, n - j] ** 2 * v[j]
        v[n] = gamma[0] - s
        if v[n] <= 0:
            v[n] = 1e-12
    return theta, v


def fit_ma_innovations(x: np.ndarray, q: int) -> tuple[np.ndarray, float, float]:
    """Fit MA(q) by the innovations method: returns (theta, sigma2, mean)."""
    x = np.asarray(x, dtype=float)
    n = x.size
    if n <= q + 2:
        raise ModelFitError(f"MA({q}) needs more than {q + 2} points")
    mu = float(x.mean())
    m = min(max(2 * q, 16), n - 1)
    gamma = acvf(x, m)
    if gamma[0] <= 1e-300:
        return np.zeros(q), 0.0, mu
    theta, v = innovations(gamma, m)
    return theta[m, 1 : q + 1].copy(), float(v[m]), mu


def hannan_rissanen(
    x: np.ndarray, p: int, q: int
) -> tuple[np.ndarray, np.ndarray, float, float]:
    """Fit ARMA(p, q) by the Hannan-Rissanen two-stage regression.

    Stage 1: a long AR fit provides residual estimates.  Stage 2: OLS of
    x_t on (x_{t-1..t-p}, e_{t-1..t-q}).  Returns
    (phi, theta, sigma2, mean).
    """
    x = np.asarray(x, dtype=float)
    n = x.size
    m = max(20, 2 * (p + q))
    if n <= m + p + q + 2:
        raise ModelFitError(f"ARMA({p},{q}) needs more than {m + p + q + 2} points")
    mu = float(x.mean())
    xc = x - mu
    if q == 0:
        phi, sigma2, _ = yule_walker(x, p)
        return phi, np.zeros(0), sigma2, mu
    # Stage 1: long AR for residuals.
    phi_long, _, _ = yule_walker(x, m)
    e = np.zeros(n)
    for t in range(m, n):
        e[t] = xc[t] - np.dot(phi_long, xc[t - m : t][::-1])
    # Stage 2: regression.
    start = m + max(p, q)
    rows = n - start
    cols = p + q
    design = np.empty((rows, cols))
    for i in range(p):
        design[:, i] = xc[start - 1 - i : n - 1 - i]
    for j in range(q):
        design[:, p + j] = e[start - 1 - j : n - 1 - j]
    target = xc[start:]
    coef, *_ = np.linalg.lstsq(design, target, rcond=None)
    phi = coef[:p]
    theta = coef[p:]
    resid = target - design @ coef
    sigma2 = float(np.mean(resid**2))
    return phi, theta, sigma2, mu


def gph_estimate(x: np.ndarray, power: float = 0.5) -> float:
    """Geweke-Porter-Hudak log-periodogram estimate of the memory
    parameter ``d`` (clipped to [-0.49, 0.49] for stationarity)."""
    x = np.asarray(x, dtype=float)
    n = x.size
    if n < 32:
        raise ModelFitError("GPH needs at least 32 points")
    xc = x - x.mean()
    m = max(4, int(n**power))
    freqs = 2.0 * np.pi * np.arange(1, m + 1) / n
    fx = np.fft.rfft(xc)[1 : m + 1]
    periodogram = (np.abs(fx) ** 2) / (2.0 * np.pi * n)
    periodogram = np.maximum(periodogram, 1e-300)
    reg_x = np.log(4.0 * np.sin(freqs / 2.0) ** 2)
    reg_y = np.log(periodogram)
    slope = np.polyfit(reg_x, reg_y, 1)[0]
    d = -slope
    return float(np.clip(d, -0.49, 0.49))


def psi_weights(phi: np.ndarray, theta: np.ndarray, k: int) -> np.ndarray:
    """MA(inf) weights psi_0..psi_{k-1} of an ARMA(p, q) model.

    psi_0 = 1; psi_j = theta_j + sum_{i=1..min(j,p)} phi_i psi_{j-i}.
    The h-step forecast error variance is sigma2 * sum_{j<h} psi_j².
    """
    phi = np.asarray(phi, dtype=float)
    theta = np.asarray(theta, dtype=float)
    psi = np.zeros(max(k, 1))
    psi[0] = 1.0
    for j in range(1, k):
        val = theta[j - 1] if j - 1 < theta.size else 0.0
        upto = min(j, phi.size)
        if upto:
            # psi[j-i] for i = 1..upto
            val += np.dot(phi[:upto], psi[j - upto : j][::-1])
        psi[j] = val
    return psi[:k]
