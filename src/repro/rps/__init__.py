"""RPS: the Resource Prediction System toolkit.

Time-series models (AR/MA/ARMA/ARIMA/ARFIMA, mean/last/window
baselines, refitting template), streaming and client-server predictors,
an evaluator that monitors fit quality, sensors that feed measurements
in, and synthetic self-similar host-load generators.
"""

from repro.rps.evaluator import EvaluationReport, Evaluator
from repro.rps.hostload import ar_trace, fgn, host_load_trace
from repro.rps.models import (
    MultiExpertModel,
    ArModel,
    ArimaModel,
    ArmaModel,
    FarimaModel,
    FittedModel,
    Forecast,
    LastModel,
    MaModel,
    MeanModel,
    Model,
    RefittingModel,
    WindowModel,
    parse_model,
)
from repro.rps.predictor import (
    ClientServerPredictor,
    PredictionResponse,
    StreamingPredictor,
)
from repro.rps.sensors import FlowBandwidthSensor, HostLoadSensor
from repro.rps.service import RpsPredictionService

__all__ = [
    "EvaluationReport",
    "Evaluator",
    "ar_trace",
    "fgn",
    "host_load_trace",
    "ArModel",
    "ArimaModel",
    "ArmaModel",
    "FarimaModel",
    "FittedModel",
    "Forecast",
    "LastModel",
    "MaModel",
    "MeanModel",
    "Model",
    "RefittingModel",
    "WindowModel",
    "parse_model",
    "MultiExpertModel",
    "ClientServerPredictor",
    "PredictionResponse",
    "StreamingPredictor",
    "FlowBandwidthSensor",
    "HostLoadSensor",
    "RpsPredictionService",
]
