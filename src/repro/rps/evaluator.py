"""Online prediction-error evaluation.

"Once a model has been chosen, fitted to historical data, and is in
use, its error must be monitored to verify that the fit continues to
hold.  In RPS, this continuous testing (done by the evaluator) is used
to decide when the model must be refit" (paper §3.3).

The evaluator compares each new observation with the one-step-ahead
forecast made before it arrived, tracks the mean squared error over a
sliding window, and flags a refit when the observed MSE exceeds the
model's own claimed error variance by a tolerance factor.  It also
reports how well-calibrated the model's variance claims are — the
"RPS characterizes its own prediction error" property of §5.3.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.rps.models.base import FittedModel


@dataclass
class EvaluationReport:
    """Summary of streaming prediction quality."""

    n: int
    mse: float
    #: mean of the model's claimed one-step error variances
    claimed_var: float
    #: observed MSE / claimed variance; ~1 means well calibrated
    calibration_ratio: float


class Evaluator:
    """Wraps a fitted model: feed observations, track errors, decide
    when to refit."""

    def __init__(
        self,
        fitted: FittedModel,
        window: int = 128,
        refit_tolerance: float = 2.0,
        min_samples: int = 16,
    ) -> None:
        self.fitted = fitted
        self.window = window
        self.refit_tolerance = refit_tolerance
        self.min_samples = min_samples
        self._errors: deque[float] = deque(maxlen=window)
        self._claimed: deque[float] = deque(maxlen=window)
        self.observations = 0
        self.refit_flags = 0

    def observe(self, value: float) -> float:
        """Feed one observation; returns the one-step prediction error.

        The forecast is taken *before* the model absorbs the value, so
        the error is honest out-of-sample error.
        """
        fc = self.fitted.forecast(1)
        err = float(value - fc.values[0])
        self._errors.append(err)
        self._claimed.append(float(fc.variances[0]))
        self.fitted.step(value)
        self.observations += 1
        obs.counter("rps.evaluator.observations").inc()
        obs.histogram("rps.evaluator.abs_error", spec=self.fitted.spec).observe(
            abs(err)
        )
        return err

    def mse(self) -> float:
        if not self._errors:
            return 0.0
        e = np.fromiter(self._errors, dtype=float)
        return float(np.mean(e**2))

    def claimed_variance(self) -> float:
        if not self._claimed:
            return 0.0
        return float(np.mean(np.fromiter(self._claimed, dtype=float)))

    def needs_refit(self) -> bool:
        """True when observed error overruns the claimed variance."""
        if len(self._errors) < self.min_samples:
            return False
        claimed = self.claimed_variance()
        if claimed <= 0:
            return self.mse() > 0
        flag = self.mse() > self.refit_tolerance * claimed
        if flag:
            self.refit_flags += 1
            obs.counter("rps.evaluator.refit_flags").inc()
        return flag

    def report(self) -> EvaluationReport:
        mse = self.mse()
        claimed = self.claimed_variance()
        ratio = mse / claimed if claimed > 0 else float("inf") if mse > 0 else 1.0
        return EvaluationReport(len(self._errors), mse, claimed, ratio)
