"""The prediction service the Modeler plugs into.

Adapts RPS's client-server predictor to the narrow interface
:class:`repro.modeler.api.PredictionService` expects: given a history
vector, forecast ``horizon`` steps with error variances.  "This
location is the appropriate choice" for prediction in the Remos
architecture (paper §2.3) — history flows up from the collectors, the
fit happens next to the application that asked.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.common.errors import ModelFitError
from repro.rps.predictor import ClientServerPredictor


class RpsPredictionService:
    """Client-server RPS with a configurable model and a fallback.

    If the preferred model cannot be fitted (short or degenerate
    history), falls back through simpler specs — a monitoring system
    must answer with *something* sensible rather than fail the query.
    """

    def __init__(
        self,
        spec: str = "AR(16)",
        fallbacks: tuple[str, ...] = ("AR(4)", "BM(8)", "LAST"),
    ) -> None:
        self.spec = spec
        self.fallbacks = fallbacks
        self.server = ClientServerPredictor(spec)

    def predict_series(
        self, values: np.ndarray, horizon: int
    ) -> tuple[np.ndarray, np.ndarray]:
        values = np.asarray(values, dtype=float)
        obs.counter("rps.service.requests").inc()
        for spec in (self.spec, *self.fallbacks):
            try:
                resp = self.server.request(values, horizon, spec)
            except ModelFitError:
                obs.counter("rps.service.fallbacks", failed_spec=spec).inc()
                continue
            return resp.forecast.values, resp.forecast.variances
        # Last resort: constant forecast with zero claimed variance.
        obs.counter("rps.service.last_resort").inc()
        last = float(values[-1]) if values.size else 0.0
        return np.full(horizon, last), np.zeros(horizon)
