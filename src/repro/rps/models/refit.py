"""Periodically refitting model template.

RPS provides "a template that creates a periodically re-fitting version
of any model" (paper §3.3).  The wrapper keeps a sliding window of
recent observations and refits the inner model every
``refit_interval`` steps — or immediately when asked to (the evaluator
uses this when the error characterization degrades).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro import obs
from repro.common.errors import ModelFitError
from repro.rps.models.base import FittedModel, Forecast, Model


class FittedRefitting(FittedModel):
    def __init__(self, model: Model, data: np.ndarray, interval: int, window: int) -> None:
        self.spec = f"REFIT({model.spec},{interval})"
        self._model = model
        self._interval = interval
        self._buf: deque[float] = deque(
            (float(v) for v in np.asarray(data, dtype=float)), maxlen=window
        )
        self._inner = model.fit(np.fromiter(self._buf, dtype=float))
        self._since_fit = 0
        #: number of refits performed (diagnostics)
        self.refits = 0

    def step(self, value: float) -> None:
        self._buf.append(float(value))
        self._inner.step(value)
        self._since_fit += 1
        if self._since_fit >= self._interval:
            self.refit()

    def refit(self) -> None:
        """Refit the inner model on the current window now."""
        t0 = obs.wall_now()
        try:
            self._inner = self._model.fit(np.fromiter(self._buf, dtype=float))
            self.refits += 1
            obs.counter("rps.refit.events", spec=self._model.spec).inc()
            obs.histogram("rps.fit.wall_s", spec=self._model.spec).observe(
                obs.wall_now() - t0
            )
        except ModelFitError:
            pass  # keep the old fit when the window is degenerate
        self._since_fit = 0

    def forecast(self, horizon: int) -> Forecast:
        return self._inner.forecast(horizon)


class RefittingModel(Model):
    """Wrap any model to refit every ``refit_interval`` steps."""

    def __init__(self, inner: Model, refit_interval: int, window: int | None = None) -> None:
        if refit_interval < 1:
            raise ModelFitError("refit interval must be >= 1")
        self.inner = inner
        self.refit_interval = refit_interval
        self.window = window or max(4 * refit_interval, 256)

    @property
    def spec(self) -> str:
        return f"REFIT({self.inner.spec},{self.refit_interval})"

    def fit(self, data: np.ndarray) -> FittedRefitting:
        return FittedRefitting(self.inner, data, self.refit_interval, self.window)
