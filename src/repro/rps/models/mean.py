"""Trivial baseline models: long-term mean and last value.

These anchor the cost spectrum of Fig. 7 — essentially free to fit and
step — and are surprisingly competitive baselines for some signals,
which is why RPS carries them (paper §3.3).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ModelFitError
from repro.rps.models.base import FittedModel, Forecast, Model


class FittedMean(FittedModel):
    """Predicts the running mean of everything seen; the error variance
    is the running variance (Welford's online update)."""

    spec = "MEAN"

    def __init__(self, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=float)
        self._n = data.size
        self._mean = float(data.mean())
        self._m2 = float(((data - self._mean) ** 2).sum())

    def step(self, value: float) -> None:
        self._n += 1
        delta = value - self._mean
        self._mean += delta / self._n
        self._m2 += delta * (value - self._mean)

    def forecast(self, horizon: int) -> Forecast:
        var = self._m2 / self._n if self._n > 0 else 0.0
        return Forecast(
            np.full(horizon, self._mean), np.full(horizon, max(var, 0.0))
        )


class MeanModel(Model):
    """Long-term average predictor."""

    @property
    def spec(self) -> str:
        return "MEAN"

    def fit(self, data: np.ndarray) -> FittedMean:
        data = np.asarray(data, dtype=float)
        if data.size < 1:
            raise ModelFitError("MEAN needs at least one observation")
        return FittedMean(data)


class FittedLast(FittedModel):
    """Predicts the last observed value (a random-walk forecast).

    The h-step error variance estimate is h times the running mean
    squared first difference — the random-walk scaling.
    """

    spec = "LAST"

    def __init__(self, data: np.ndarray) -> None:
        data = np.asarray(data, dtype=float)
        self._last = float(data[-1])
        diffs = np.diff(data)
        self._n_diffs = diffs.size
        self._sq_sum = float((diffs**2).sum())

    def step(self, value: float) -> None:
        d = value - self._last
        self._sq_sum += d * d
        self._n_diffs += 1
        self._last = value

    def forecast(self, horizon: int) -> Forecast:
        step_var = self._sq_sum / self._n_diffs if self._n_diffs else 0.0
        h = np.arange(1, horizon + 1, dtype=float)
        return Forecast(np.full(horizon, self._last), step_var * h)


class LastModel(Model):
    """Last-value predictor."""

    @property
    def spec(self) -> str:
        return "LAST"

    def fit(self, data: np.ndarray) -> FittedLast:
        data = np.asarray(data, dtype=float)
        if data.size < 1:
            raise ModelFitError("LAST needs at least one observation")
        return FittedLast(data)
