"""Model interfaces for the RPS toolkit.

A :class:`Model` is a fitting recipe; ``fit(data)`` produces a
:class:`FittedModel` holding whatever state prediction needs.  Fitted
models support the streaming regime the paper describes (§2.3): absorb
one observation with :meth:`FittedModel.step`, ask for k-step-ahead
forecasts with :meth:`FittedModel.forecast` — each forecast carries its
error variance, because "we can characterize variance, which
applications need to make decisions based on the predictions" (§6.1).

``parse_model`` turns specs like ``"AR(16)"`` or ``"ARIMA(2,1,2)"``
into model objects — the form in which applications choose models.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.common.errors import PredictionError


@dataclass
class Forecast:
    """k-step-ahead predictions with per-step error variances."""

    values: np.ndarray
    variances: np.ndarray

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)
        self.variances = np.asarray(self.variances, dtype=float)
        if self.values.shape != self.variances.shape:
            raise PredictionError("values/variances shape mismatch")

    def interval(self, confidence: float = 0.95) -> tuple[np.ndarray, np.ndarray]:
        """(lower, upper) prediction bands at the given confidence.

        Gaussian innovations give normal prediction errors for linear
        models, so the band is ``value ± z * sqrt(variance)`` — the
        variance characterization the paper highlights ("applications
        need [variance] to make decisions based on the predictions",
        §6.1), in the form an application actually uses.
        """
        if not 0.0 < confidence < 1.0:
            raise PredictionError("confidence must be in (0, 1)")
        from scipy.stats import norm

        z = float(norm.ppf(0.5 + confidence / 2.0))
        half = z * np.sqrt(np.maximum(self.variances, 0.0))
        return self.values - half, self.values + half


class FittedModel(ABC):
    """A model fitted to data, ready to stream and forecast."""

    #: spec string of the model that produced this fit
    spec: str = "?"

    @abstractmethod
    def step(self, value: float) -> None:
        """Absorb one new observation."""

    @abstractmethod
    def forecast(self, horizon: int) -> Forecast:
        """Predict the next ``horizon`` observations."""

    def step_many(self, values: np.ndarray) -> None:
        for v in np.asarray(values, dtype=float):
            self.step(float(v))


class Model(ABC):
    """A fitting recipe for one model family."""

    @property
    @abstractmethod
    def spec(self) -> str:
        """Canonical spec string, e.g. ``"AR(16)"``."""

    @abstractmethod
    def fit(self, data: np.ndarray) -> FittedModel:
        """Fit to historical data (oldest first)."""

    def __repr__(self) -> str:
        return f"Model({self.spec})"


_SPEC_RE = re.compile(r"^([A-Z]+)(?:\(([^()]*)\))?$")


def parse_model(spec: str) -> Model:
    """Parse a model spec string.

    Supported: ``MEAN``, ``LAST``, ``BM(w)`` (windowed mean), ``AR(p)``,
    ``MA(q)``, ``ARMA(p,q)``, ``ARIMA(p,d,q)``, ``ARFIMA(p,q)``
    (fractional d estimated from the data),
    ``REFIT(<inner spec>,n)`` for a periodically refit model, and
    ``EXPERTS(<spec>+<spec>+...)`` for NWS-style model selection.
    """
    from repro.rps.models.ar import ArModel
    from repro.rps.models.arima import ArimaModel
    from repro.rps.models.arma import ArmaModel
    from repro.rps.models.experts import MultiExpertModel
    from repro.rps.models.farima import FarimaModel
    from repro.rps.models.ma import MaModel
    from repro.rps.models.mean import LastModel, MeanModel
    from repro.rps.models.refit import RefittingModel
    from repro.rps.models.window import WindowModel

    spec = spec.strip().upper()
    if spec.startswith("REFIT(") and spec.endswith(")"):
        inner = spec[len("REFIT(") : -1]
        idx = inner.rfind(",")
        if idx < 0:
            raise PredictionError(f"REFIT needs (model, interval): {spec!r}")
        return RefittingModel(parse_model(inner[:idx]), int(inner[idx + 1 :]))
    if spec.startswith("EXPERTS(") and spec.endswith(")"):
        inner = spec[len("EXPERTS(") : -1]
        parts = [p for p in inner.split("+") if p]
        if not parts:
            raise PredictionError(f"EXPERTS needs at least one model: {spec!r}")
        return MultiExpertModel([parse_model(p) for p in parts])
    m = _SPEC_RE.match(spec)
    if not m:
        raise PredictionError(f"bad model spec {spec!r}")
    name, args_s = m.group(1), m.group(2)
    args = [int(a) for a in args_s.split(",")] if args_s else []
    if name == "MEAN" and not args:
        return MeanModel()
    if name == "LAST" and not args:
        return LastModel()
    if name == "BM" and len(args) == 1:
        return WindowModel(args[0])
    if name == "AR" and len(args) == 1:
        return ArModel(args[0])
    if name == "MA" and len(args) == 1:
        return MaModel(args[0])
    if name == "ARMA" and len(args) == 2:
        return ArmaModel(args[0], args[1])
    if name == "ARIMA" and len(args) == 3:
        return ArimaModel(args[0], args[1], args[2])
    if name == "ARFIMA" and len(args) == 2:
        return FarimaModel(args[0], args[1])
    raise PredictionError(f"unknown model spec {spec!r}")
