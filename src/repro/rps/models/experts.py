"""Multi-expert model selection (the NWS approach).

Paper §3.3: "In RPS, this continuous testing (done by the evaluator) is
used to decide when the model must be refit.  In contrast, the Network
Weather Service uses similar feedback to decide which of a set of
models to use next in a variant of the multiple expert machine learning
approach."

This module implements that contrasting strategy so the two feedback
designs can be compared head-to-head (see the ablation benchmarks):
every candidate model runs in parallel; per step each expert's one-step
error updates an exponentially weighted MSE score; forecasts come from
the currently best-scoring expert.
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import ModelFitError
from repro.rps.models.base import FittedModel, Forecast, Model


class FittedMultiExpert(FittedModel):
    """All experts stream in parallel; the best one answers."""

    def __init__(self, fitted: "list[FittedModel]", decay: float) -> None:
        self.spec = f"EXPERTS({'+'.join(f.spec for f in fitted)})"
        self._experts = fitted
        self._decay = decay
        #: exponentially weighted squared one-step error per expert
        self._scores = np.zeros(len(fitted))
        self._seen = 0
        #: how many times each expert answered a forecast (diagnostics)
        self.wins = np.zeros(len(fitted), dtype=int)

    def step(self, value: float) -> None:
        for i, f in enumerate(self._experts):
            err = value - float(f.forecast(1).values[0])
            self._scores[i] = self._decay * self._scores[i] + (1 - self._decay) * err * err
            f.step(value)
        self._seen += 1

    def best_index(self) -> int:
        return int(np.argmin(self._scores))

    def forecast(self, horizon: int) -> Forecast:
        best = self.best_index()
        self.wins[best] += 1
        return self._experts[best].forecast(horizon)


class MultiExpertModel(Model):
    """NWS-style selection over a pool of candidate models."""

    def __init__(self, experts: "list[Model]", decay: float = 0.9) -> None:
        if not experts:
            raise ModelFitError("need at least one expert")
        if not 0.0 < decay < 1.0:
            raise ModelFitError("decay must be in (0, 1)")
        self.experts = list(experts)
        self.decay = decay

    @property
    def spec(self) -> str:
        return f"EXPERTS({'+'.join(m.spec for m in self.experts)})"

    def fit(self, data: np.ndarray) -> FittedMultiExpert:
        data = np.asarray(data, dtype=float)
        fitted: list[FittedModel] = []
        for m in self.experts:
            try:
                fitted.append(m.fit(data))
            except ModelFitError:
                continue  # an expert that can't fit simply sits out
        if not fitted:
            raise ModelFitError("no expert could fit the data")
        return FittedMultiExpert(fitted, self.decay)
