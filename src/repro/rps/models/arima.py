"""ARIMA(p, d, q): ARMA on a d-times differenced series."""

from __future__ import annotations

import numpy as np

from repro.common.errors import ModelFitError
from repro.rps.acf import difference_levels
from repro.rps.fit import psi_weights
from repro.rps.models.arma import ArmaModel, FittedArma
from repro.rps.models.base import FittedModel, Forecast, Model


class FittedArima(FittedModel):
    """Streaming state: the inner fitted ARMA plus the last value at
    each differencing level (to difference new samples incrementally
    and to integrate forecasts back)."""

    def __init__(self, inner: FittedArma, d: int, level_lasts: np.ndarray) -> None:
        p, q = inner.phi.size, inner.theta.size
        self.spec = f"ARIMA({p},{d},{q})"
        self.inner = inner
        self.d = d
        #: last observed value after k rounds of differencing, k = 0..d-1
        self._lasts = np.array(level_lasts, dtype=float)

    def step(self, value: float) -> None:
        w = float(value)
        for k in range(self.d):
            w, self._lasts[k] = w - self._lasts[k], w
        self.inner.step(w)

    def forecast(self, horizon: int) -> Forecast:
        inner_fc = self.inner.forecast(horizon)
        preds = inner_fc.values
        for level in range(self.d - 1, -1, -1):
            preds = self._lasts[level] + np.cumsum(preds)
        # psi weights of the integrated process: cumulative-sum the
        # ARMA psi weights d times.
        psi = psi_weights(self.inner.phi, self.inner.theta, horizon)
        for _ in range(self.d):
            psi = np.cumsum(psi)
        variances = self.inner.sigma2 * np.cumsum(psi**2)
        return Forecast(preds, variances)


class ArimaModel(Model):
    """ARIMA(p, d, q) via differencing + Hannan-Rissanen."""

    def __init__(self, p: int, d: int, q: int) -> None:
        if d < 0:
            raise ModelFitError("d must be >= 0")
        self.p, self.d, self.q = p, d, q
        self._arma = ArmaModel(p, q)

    @property
    def spec(self) -> str:
        return f"ARIMA({self.p},{self.d},{self.q})"

    def fit(self, data: np.ndarray) -> FittedArima:
        data = np.asarray(data, dtype=float)
        diffed, lasts = difference_levels(data, self.d)
        inner = self._arma.fit(diffed)
        return FittedArima(inner, self.d, lasts)
