"""ARMA models fitted by Hannan-Rissanen."""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.common.errors import ModelFitError
from repro.rps.fit import hannan_rissanen, psi_weights
from repro.rps.models.base import FittedModel, Forecast, Model


class FittedArma(FittedModel):
    """A fitted ARMA(p, q): state is the last p observations and the
    last q innovation estimates."""

    def __init__(
        self,
        phi: np.ndarray,
        theta: np.ndarray,
        sigma2: float,
        mu: float,
        data: np.ndarray,
    ) -> None:
        p, q = phi.size, theta.size
        self.spec = f"ARMA({p},{q})"
        self.phi = phi
        self.theta = theta
        self.sigma2 = sigma2
        self.mu = mu
        self._values: deque[float] = deque(maxlen=max(p, 1))
        self._resid: deque[float] = deque([0.0] * q, maxlen=max(q, 1))
        data = np.asarray(data, dtype=float)
        warm = data[-max(4 * (p + q) + 8, 32) :]
        for v in warm:
            self.step(float(v))

    def _one_step(self) -> float:
        vals = np.fromiter(self._values, dtype=float)[::-1] - self.mu  # newest first
        resid = np.fromiter(self._resid, dtype=float)[::-1]
        pred = self.mu
        upto = min(self.phi.size, vals.size)
        if upto:
            pred += float(np.dot(self.phi[:upto], vals[:upto]))
        upto = min(self.theta.size, resid.size)
        if upto:
            pred += float(np.dot(self.theta[:upto], resid[:upto]))
        return pred

    def step(self, value: float) -> None:
        e = value - self._one_step() if self._values else 0.0
        self._values.append(float(value))
        self._resid.append(e)

    def forecast(self, horizon: int) -> Forecast:
        p, q = self.phi.size, self.theta.size
        vals = np.fromiter(self._values, dtype=float) - self.mu  # oldest first
        resid = np.fromiter(self._resid, dtype=float)
        n = vals.size
        ext = np.concatenate([vals, np.zeros(horizon)])
        for k in range(horizon):
            pred = 0.0
            upto = min(p, n + k)
            if upto:
                pred += float(np.dot(self.phi[:upto], ext[n + k - upto : n + k][::-1]))
            # MA part: only residuals with index <= now contribute
            for j in range(1, q + 1):
                lag = j - (k + 1)  # e_{t+k+1-j} = e_{t-lag}
                if 0 <= lag < resid.size:
                    pred += self.theta[j - 1] * resid[resid.size - 1 - lag]
            ext[n + k] = pred
        preds = ext[n:] + self.mu
        psi = psi_weights(self.phi, self.theta, horizon)
        variances = self.sigma2 * np.cumsum(psi**2)
        return Forecast(preds, variances)


class ArmaModel(Model):
    """ARMA(p, q) fit by the Hannan-Rissanen two-stage regression."""

    def __init__(self, p: int, q: int) -> None:
        if p < 0 or q < 0 or (p == 0 and q == 0):
            raise ModelFitError("ARMA needs p >= 0, q >= 0, p+q > 0")
        self.p = p
        self.q = q

    @property
    def spec(self) -> str:
        return f"ARMA({self.p},{self.q})"

    def fit(self, data: np.ndarray) -> FittedArma:
        data = np.asarray(data, dtype=float)
        if self.p and not self.q:
            from repro.rps.fit import yule_walker

            phi, sigma2, mu = yule_walker(data, self.p)
            return FittedArma(phi, np.zeros(0), sigma2, mu, data)
        if self.q and not self.p:
            from repro.rps.fit import fit_ma_innovations

            theta, sigma2, mu = fit_ma_innovations(data, self.q)
            return FittedArma(np.zeros(0), theta, sigma2, mu, data)
        phi, theta, sigma2, mu = hannan_rissanen(data, self.p, self.q)
        return FittedArma(phi, theta, sigma2, mu, data)
