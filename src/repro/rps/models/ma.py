"""Moving-average models, fitted with the innovations algorithm."""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.common.errors import ModelFitError
from repro.rps.fit import fit_ma_innovations
from repro.rps.models.base import FittedModel, Forecast, Model


class FittedMa(FittedModel):
    """A fitted MA(q): coefficients plus the last q innovation
    estimates (one-step prediction errors) as streaming state."""

    def __init__(self, theta: np.ndarray, sigma2: float, mu: float, data: np.ndarray) -> None:
        q = theta.size
        self.spec = f"MA({q})"
        self.theta = theta
        self.sigma2 = sigma2
        self.mu = mu
        self._resid: deque[float] = deque([0.0] * q, maxlen=max(q, 1))
        # Replay the fitting data to estimate current innovations.
        for v in np.asarray(data, dtype=float)[-4 * q - 8 :]:
            self.step(float(v))

    def _one_step(self) -> float:
        # x̂_{t+1} = mu + sum_j theta_j e_{t+1-j}
        resid = np.fromiter(self._resid, dtype=float)  # oldest first
        return self.mu + float(np.dot(self.theta, resid[::-1]))

    def step(self, value: float) -> None:
        e = value - self._one_step()
        self._resid.append(e)

    def forecast(self, horizon: int) -> Forecast:
        q = self.theta.size
        resid = np.fromiter(self._resid, dtype=float)[::-1]  # newest first
        preds = np.full(horizon, self.mu)
        for k in range(1, min(horizon, q) + 1):
            # x̂_{t+k} = mu + sum_{j=k..q} theta_j e_{t+k-j}
            acc = 0.0
            for j in range(k, q + 1):
                lag = j - k  # e_{t-lag}
                if lag < resid.size:
                    acc += self.theta[j - 1] * resid[lag]
            preds[k - 1] += acc
        psi = np.concatenate([[1.0], self.theta])
        var = np.cumsum(psi**2)
        variances = np.empty(horizon)
        for k in range(horizon):
            variances[k] = self.sigma2 * var[min(k, q)]
        return Forecast(preds, variances)


class MaModel(Model):
    """MA(q) fit by the innovations method."""

    def __init__(self, order: int) -> None:
        if order < 1:
            raise ModelFitError("MA order must be >= 1")
        self.order = order

    @property
    def spec(self) -> str:
        return f"MA({self.order})"

    def fit(self, data: np.ndarray) -> FittedMa:
        data = np.asarray(data, dtype=float)
        theta, sigma2, mu = fit_ma_innovations(data, self.order)
        return FittedMa(theta, sigma2, mu, data)
