"""Autoregressive models — the workhorse of RPS host-load prediction.

The paper found "AR models of order 16 or better to be appropriate for
prediction of host load" (§3.3, citing Dinda & O'Hallaron).  Fitting is
Yule-Walker via Levinson-Durbin; forecasting is the standard recursion;
error variances come from the psi-weight expansion.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.common.errors import ModelFitError
from repro.rps.fit import psi_weights, yule_walker
from repro.rps.models.base import FittedModel, Forecast, Model


class FittedAr(FittedModel):
    """A fitted AR(p): coefficients, innovation variance, and the last
    p observations as streaming state."""

    def __init__(self, phi: np.ndarray, sigma2: float, mu: float, tail: np.ndarray) -> None:
        p = phi.size
        self.spec = f"AR({p})"
        self.phi = phi
        self.sigma2 = sigma2
        self.mu = mu
        self._state: deque[float] = deque(
            (float(v) for v in tail[-p:]), maxlen=max(p, 1)
        )

    def step(self, value: float) -> None:
        self._state.append(float(value))

    def forecast(self, horizon: int) -> Forecast:
        p = self.phi.size
        if horizon < 1:
            return Forecast(np.empty(0), np.empty(0))
        # centered state, most recent last
        hist = np.fromiter(self._state, dtype=float) - self.mu
        ext = np.concatenate([hist, np.zeros(horizon)])
        n = hist.size
        for k in range(horizon):
            upto = min(p, n + k)
            if upto:
                window = ext[n + k - upto : n + k][::-1]
                ext[n + k] = np.dot(self.phi[:upto], window)
        preds = ext[n:] + self.mu
        psi = psi_weights(self.phi, np.zeros(0), horizon)
        variances = self.sigma2 * np.cumsum(psi**2)
        return Forecast(preds, variances)


class ArModel(Model):
    """AR(p) fit by Yule-Walker / Levinson-Durbin."""

    def __init__(self, order: int) -> None:
        if order < 1:
            raise ModelFitError("AR order must be >= 1")
        self.order = order

    @property
    def spec(self) -> str:
        return f"AR({self.order})"

    def fit(self, data: np.ndarray) -> FittedAr:
        data = np.asarray(data, dtype=float)
        phi, sigma2, mu = yule_walker(data, self.order)
        return FittedAr(phi, sigma2, mu, data)
