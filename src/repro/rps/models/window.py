"""Windowed-average predictor (RPS's "BM"/windowed mean model)."""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.common.errors import ModelFitError
from repro.rps.models.base import FittedModel, Forecast, Model


class FittedWindow(FittedModel):
    """Predicts the mean of the last ``w`` observations.

    The error variance is tracked online as the mean squared one-step
    prediction error over the fitting data and stream so far.
    """

    def __init__(self, data: np.ndarray, window: int) -> None:
        self.spec = f"BM({window})"
        self._window = window
        data = np.asarray(data, dtype=float)
        self._buf: deque[float] = deque(maxlen=window)
        self._sum = 0.0  # running sum of the buffer, O(1) per step
        self._err_sq = 0.0
        self._err_n = 0
        # replay the fit data so the error estimate is populated
        warm = min(data.size, 4 * window)
        for v in data[:-warm] if warm < data.size else []:
            self._push(float(v))
        for v in data[-warm:]:
            self.step(float(v))

    def _push(self, value: float) -> None:
        if len(self._buf) == self._window:
            self._sum -= self._buf[0]
        self._buf.append(value)
        self._sum += value

    def step(self, value: float) -> None:
        if self._buf:
            err = value - self._sum / len(self._buf)
            self._err_sq += err * err
            self._err_n += 1
        self._push(value)

    def forecast(self, horizon: int) -> Forecast:
        pred = self._sum / len(self._buf) if self._buf else 0.0
        var = self._err_sq / self._err_n if self._err_n else 0.0
        return Forecast(np.full(horizon, pred), np.full(horizon, var))


class WindowModel(Model):
    """Mean-of-last-w predictor."""

    def __init__(self, window: int) -> None:
        if window < 1:
            raise ModelFitError("window must be >= 1")
        self.window = window

    @property
    def spec(self) -> str:
        return f"BM({self.window})"

    def fit(self, data: np.ndarray) -> FittedWindow:
        data = np.asarray(data, dtype=float)
        if data.size < 1:
            raise ModelFitError("BM needs at least one observation")
        return FittedWindow(data, self.window)
