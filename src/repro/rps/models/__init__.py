"""RPS predictive models: Box-Jenkins linear family plus baselines."""

from repro.rps.models.base import FittedModel, Forecast, Model, parse_model
from repro.rps.models.mean import LastModel, MeanModel
from repro.rps.models.window import WindowModel
from repro.rps.models.ar import ArModel
from repro.rps.models.ma import MaModel
from repro.rps.models.arma import ArmaModel
from repro.rps.models.arima import ArimaModel
from repro.rps.models.farima import FarimaModel
from repro.rps.models.refit import RefittingModel
from repro.rps.models.experts import FittedMultiExpert, MultiExpertModel

__all__ = [
    "FittedModel",
    "Forecast",
    "Model",
    "parse_model",
    "LastModel",
    "MeanModel",
    "WindowModel",
    "ArModel",
    "MaModel",
    "ArmaModel",
    "ArimaModel",
    "FarimaModel",
    "RefittingModel",
    "MultiExpertModel",
    "FittedMultiExpert",
]
