"""Fractionally integrated ARFIMA models for long-range dependence.

"A fractionally integrated ARIMA model which is useful for modeling
long-range dependence such as arises from self-similar signals"
(paper §3.3).  The memory parameter ``d`` is estimated with the GPH
log-periodogram regression; the series is fractionally differenced
with the truncated binomial filter; an ARMA(p, q) is fitted to the
result.  Forecasts invert the filter recursively.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.common.errors import ModelFitError
from repro.rps.acf import fractional_diff_weights
from repro.rps.fit import gph_estimate, psi_weights
from repro.rps.models.arma import ArmaModel, FittedArma
from repro.rps.models.base import FittedModel, Forecast, Model

#: truncation length of the fractional differencing filter
FILTER_LEN = 256


class FittedFarima(FittedModel):
    """State: recent raw history (for the long-memory filter) plus the
    inner fitted ARMA on the fractionally differenced series."""

    def __init__(
        self, inner: FittedArma, d: float, mu: float, history: np.ndarray, p: int, q: int
    ) -> None:
        self.spec = f"ARFIMA({p},{q})"
        self.inner = inner
        self.d = d
        self.mu = mu
        self._pi = fractional_diff_weights(d, FILTER_LEN)
        self._hist: deque[float] = deque(
            (float(v) for v in history[-FILTER_LEN:]), maxlen=FILTER_LEN
        )

    def _filtered(self) -> float:
        """w_t = sum_j pi_j (x_{t-j} - mu) for the newest x."""
        h = np.fromiter(self._hist, dtype=float)[::-1] - self.mu  # newest first
        upto = min(h.size, self._pi.size)
        return float(np.dot(self._pi[:upto], h[:upto]))

    def step(self, value: float) -> None:
        self._hist.append(float(value))
        self.inner.step(self._filtered())

    def forecast(self, horizon: int) -> Forecast:
        inner_fc = self.inner.forecast(horizon)
        w_hat = inner_fc.values  # forecasts of the filtered series
        # Invert (1-B)^d: x_t = w_t - sum_{j>=1} pi_j x_{t-j} (centered).
        hist = np.fromiter(self._hist, dtype=float) - self.mu
        ext = np.concatenate([hist, np.zeros(horizon)])
        n = hist.size
        for k in range(horizon):
            upto = min(self._pi.size - 1, n + k)
            acc = w_hat[k]
            if upto:
                acc -= float(
                    np.dot(self._pi[1 : upto + 1], ext[n + k - upto : n + k][::-1])
                )
            ext[n + k] = acc
        preds = ext[n:] + self.mu
        # psi weights of the combined ARMA * (1-B)^{-d} operator.
        psi_arma = psi_weights(self.inner.phi, self.inner.theta, horizon)
        binom = fractional_diff_weights(-self.d, horizon)  # (1-B)^{-d}
        psi = np.convolve(psi_arma, binom)[:horizon]
        variances = self.inner.sigma2 * np.cumsum(psi**2)
        return Forecast(preds, variances)


class FarimaModel(Model):
    """ARFIMA(p, d, q) with GPH-estimated fractional d."""

    def __init__(self, p: int, q: int) -> None:
        if p < 0 or q < 0:
            raise ModelFitError("orders must be >= 0")
        self.p, self.q = p, q

    @property
    def spec(self) -> str:
        return f"ARFIMA({self.p},{self.q})"

    def fit(self, data: np.ndarray) -> FittedFarima:
        data = np.asarray(data, dtype=float)
        if data.size < 64:
            raise ModelFitError("ARFIMA needs at least 64 observations")
        mu = float(data.mean())
        d = gph_estimate(data)
        pi = fractional_diff_weights(d, min(FILTER_LEN, data.size))
        centered = data - mu
        filtered = np.convolve(centered, pi)[: data.size]
        # Drop the filter warm-up region before fitting.
        warm = min(pi.size, data.size // 4)
        inner_model = ArmaModel(max(self.p, 1), self.q) if (self.p or self.q) else ArmaModel(1, 0)
        inner = inner_model.fit(filtered[warm:])
        return FittedFarima(inner, d, mu, data, self.p, self.q)
