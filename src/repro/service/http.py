"""Minimal asyncio HTTP/1.1 edge for the Remos query service.

Stdlib-only by design (the container bakes no aiohttp): a hand-rolled
HTTP/1.1 loop over ``asyncio.start_server`` with keep-alive and
``Content-Length`` bodies is all a JSON RPC plane needs, and owning the
parser keeps the service's failure surface inside this repo.  The edge
is deliberately thin — it parses requests, hands the JSON body to
:meth:`repro.service.app.RemosService.dispatch`, and maps
:class:`~repro.service.wire.WireError` codes onto HTTP statuses.  All
policy (rate limits, shedding, breaker) lives behind ``dispatch`` so
in-process and remote clients traverse identical code.

Routes (all bodies canonical JSON)::

    POST /v1/flow_info        {"src": ..., "dst": ..., "predict": ...}
    POST /v1/flow_info_many   {"pairs": [[s, d], ...], "own_flows": ...}
    POST /v1/topology         {"hosts": [...], "detail": ...}
    POST /v1/node_info        {"hosts": [...]}
    POST /v1/invalidate       {"sites": [...] | null}
    POST /v1/subscribe        {"pairs": [...], "since": n, "timeout_s": t}
    GET  /v1/health
    GET  /v1/metrics

The tenant is the ``X-Remos-Tenant`` header (``anonymous`` when
absent).
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro import obs
from repro.service.app import RemosService
from repro.service.wire import WireError, canonical_json, decode_body, error_body

__all__ = ["start_server", "serve_forever", "HTTP_STATUS"]

log = obs.get_logger(__name__)

#: wire error code -> HTTP status
HTTP_STATUS: dict[str, int] = {
    "bad_request": 400,
    "not_found": 404,
    "rate_limited": 429,
    "overloaded": 503,
    "breaker_open": 503,
    "backend_error": 502,
}

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
}

MAX_BODY_BYTES = 1 << 20  # 1 MiB: topology requests list hosts, not graphs
MAX_HEADER_BYTES = 16 << 10


def _response(status: int, body: dict[str, Any], keep_alive: bool) -> bytes:
    payload = canonical_json(body).encode("utf-8")
    head = (
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + payload


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one request; None on clean EOF, WireError on junk."""
    try:
        request_line = await reader.readline()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        return None
    if not request_line:
        return None
    try:
        method, target, _version = request_line.decode("latin-1").split(None, 2)
    except ValueError:
        raise WireError("bad_request", "malformed request line") from None
    headers: dict[str, str] = {}
    total = len(request_line)
    while True:
        line = await reader.readline()
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise WireError("bad_request", "headers too large")
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise WireError("bad_request", f"body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return method.upper(), target, headers, body


async def _handle_connection(
    service: RemosService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            try:
                parsed = await _read_request(reader)
            except WireError as err:
                writer.write(_response(400, error_body(err), keep_alive=False))
                await writer.drain()
                return
            except asyncio.IncompleteReadError:
                return
            if parsed is None:
                return
            method, target, headers, raw = parsed
            keep_alive = headers.get("connection", "keep-alive") != "close"
            status, body = await _serve_one(service, method, target, headers, raw)
            writer.write(_response(status, body, keep_alive))
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionResetError, BrokenPipeError):
        pass
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def _serve_one(
    service: RemosService,
    method: str,
    target: str,
    headers: dict[str, str],
    raw: bytes,
) -> tuple[int, dict[str, Any]]:
    """One request -> (HTTP status, response envelope)."""
    path = target.split("?", 1)[0]
    if not path.startswith("/v1/"):
        err = WireError("not_found", f"unknown path {path!r} (this build speaks /v1)")
        return 404, error_body(err)
    endpoint = path[len("/v1/") :].strip("/")
    if endpoint in ("health", "metrics"):
        if method not in ("GET", "POST"):
            err = WireError("bad_request", f"{method} not allowed on {path}")
            return 405, error_body(err)
    elif method != "POST":
        err = WireError("bad_request", f"{method} not allowed on {path}")
        return 405, error_body(err)
    tenant = headers.get("x-remos-tenant", "anonymous")
    try:
        body = decode_body(raw)
        envelope = await service.dispatch(endpoint, body, tenant=tenant)
        return 200, envelope
    except WireError as err:
        return HTTP_STATUS.get(err.code, 500), error_body(err)
    except Exception as exc:  # the edge never leaks a traceback
        log.error("unhandled service error on %s: %s", path, exc)
        err = WireError("backend_error", f"internal error: {type(exc).__name__}")
        return 500, error_body(err)


async def start_server(
    service: RemosService,
    host: str = "127.0.0.1",
    port: int = 8077,
    tick_interval_s: float = 0.0,
) -> asyncio.AbstractServer:
    """Bind and return the server (caller owns the loop).

    ``tick_interval_s > 0`` starts a background task polling the flow
    watcher so long-poll subscribers receive updates; the task is
    attached to the server object and cancelled when it closes.
    """
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(service, r, w), host, port
    )

    if tick_interval_s > 0:

        async def _ticker() -> None:
            while True:
                await asyncio.sleep(tick_interval_s)
                async with service.backend.lock:
                    service.tick_subscriptions()

        # asyncio servers have no shutdown hook; stash the ticker task
        # where serve_forever (and tests) can cancel it on close
        task = asyncio.get_running_loop().create_task(_ticker())
        server._repro_ticker = task  # type: ignore[attr-defined]
    return server


async def serve_forever(
    service: RemosService,
    host: str = "127.0.0.1",
    port: int = 8077,
    tick_interval_s: float = 0.5,
) -> None:
    """Run until cancelled (the ``repro serve`` entry point)."""
    server = await start_server(service, host, port, tick_interval_s)
    addrs = ", ".join(
        f"{sock.getsockname()[0]}:{sock.getsockname()[1]}" for sock in server.sockets
    )
    log.info("remos service listening on %s", addrs)
    try:
        async with server:
            await server.serve_forever()
    finally:
        ticker = getattr(server, "_repro_ticker", None)
        if ticker is not None:
            ticker.cancel()
