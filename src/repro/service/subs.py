"""Long-poll subscriptions for flow updates.

Remos' pull API answers "what can I get *now*"; steering applications
(the paper's stock-market feed, remote visualization) also want to hear
when an answer *changes*.  The service offers the simplest contract
that survives HTTP: a client long-polls ``/v1/subscribe`` with the
channels it cares about (``"src->dst"`` flow pairs) and the last
sequence number it saw; the server parks the request until an update
arrives or the poll times out, then returns every newer event.

Determinism is load-bearing for tests: events carry a *global*
monotonically increasing ``seq`` assigned at publish time, and the
:class:`FlowWatcher` publishes in sorted-pair order each tick, so the
delivery order under the sim clock is a pure function of the world
seed.  The hub keeps a bounded ring buffer; a client that falls more
than ``capacity`` events behind is told its resume point is gone
(``resume_lost``) rather than silently missing updates.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any, Iterable

__all__ = ["SubscriptionHub", "FlowWatcher", "flow_channel"]


def flow_channel(src: str, dst: str) -> str:
    """Canonical channel key for a flow pair."""
    return f"{src}->{dst}"


class SubscriptionHub:
    """Global-sequence event fan-out with a bounded replay buffer."""

    def __init__(self, capacity: int = 1024) -> None:
        self.capacity = int(capacity)
        self._events: deque[dict[str, Any]] = deque(maxlen=self.capacity)
        self._seq = 0
        self._published = 0
        self._waiters: set[asyncio.Event] = set()

    @property
    def seq(self) -> int:
        """Sequence number of the newest event (0 before any)."""
        return self._seq

    @property
    def published(self) -> int:
        """Total events ever published (ring buffer may hold fewer)."""
        return self._published

    @property
    def oldest_seq(self) -> int:
        """Lowest seq still replayable (0 when the buffer is empty)."""
        return self._events[0]["seq"] if self._events else 0

    def publish(self, channel: str, payload: Any) -> int:
        """Append an event and wake every parked long-poll."""
        self._seq += 1
        self._published += 1
        self._events.append({"seq": self._seq, "channel": channel, "payload": payload})
        for waiter in self._waiters:
            waiter.set()
        return self._seq

    def events_since(
        self, channels: Iterable[str] | None, since: int
    ) -> list[dict[str, Any]]:
        """Buffered events newer than ``since`` on ``channels``.

        ``channels=None`` subscribes to everything.
        """
        wanted = None if channels is None else set(channels)
        return [
            ev
            for ev in self._events
            if ev["seq"] > since and (wanted is None or ev["channel"] in wanted)
        ]

    def resume_lost(self, since: int) -> bool:
        """True when ``since`` predates the replay buffer (gap!)."""
        return 0 < since < self.oldest_seq - 1 or (
            since > 0 and not self._events and self._seq > since
        )

    async def wait(
        self,
        channels: Iterable[str] | None,
        since: int,
        timeout_s: float,
    ) -> list[dict[str, Any]]:
        """Long-poll: return matching events, parking up to ``timeout_s``.

        Returns immediately when newer events already exist; an empty
        list means the poll timed out with nothing new (the client
        re-polls with the same ``since``).
        """
        wanted = None if channels is None else list(channels)
        deadline = asyncio.get_running_loop().time() + timeout_s
        while True:
            ready = self.events_since(wanted, since)
            if ready:
                return ready
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                return []
            waiter = asyncio.Event()
            self._waiters.add(waiter)
            try:
                await asyncio.wait_for(waiter.wait(), timeout=remaining)
            except asyncio.TimeoutError:
                return []
            finally:
                self._waiters.discard(waiter)


class FlowWatcher:
    """Polls watched flow pairs and publishes changes to a hub.

    ``tick()`` is driven by whoever owns the clock — the service's
    background task in wall time, or a test advancing the sim engine —
    and queries the session for every watched pair *in sorted order*,
    publishing an event per answer whose available bandwidth moved by
    more than ``epsilon_bps`` (or whose status changed).  Sorted
    iteration keeps the global sequence deterministic for a given
    world.
    """

    def __init__(self, session: Any, epsilon_bps: float = 1.0) -> None:
        self.session = session
        self.epsilon_bps = float(epsilon_bps)
        self._pairs: set[tuple[str, str]] = set()
        self._last: dict[tuple[str, str], tuple[str, float]] = {}

    def watch(self, src: str, dst: str) -> None:
        self._pairs.add((str(src), str(dst)))

    def unwatch(self, src: str, dst: str) -> None:
        self._pairs.discard((str(src), str(dst)))
        self._last.pop((str(src), str(dst)), None)

    @property
    def pairs(self) -> list[tuple[str, str]]:
        return sorted(self._pairs)

    def tick(self, hub: SubscriptionHub) -> int:
        """One poll sweep; returns the number of events published."""
        pairs = self.pairs
        if not pairs:
            return 0
        answers = self.session.flow_info_many(pairs)
        published = 0
        for pair, ans in zip(pairs, answers):
            signature = (str(ans.status), float(ans.available_bps))
            prev = self._last.get(pair)
            if prev is not None:
                same_status = prev[0] == signature[0]
                small_move = abs(prev[1] - signature[1]) <= self.epsilon_bps
                if same_status and small_move:
                    continue
            self._last[pair] = signature
            hub.publish(flow_channel(*pair), ans.to_dict())
            published += 1
        return published
