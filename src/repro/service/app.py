"""RemosService: the query-plane application behind the HTTP edge.

One dispatch pipeline serves every endpoint, in-process
(:class:`repro.service.client.DirectClient`) and over HTTP
(:mod:`repro.service.http`) alike — the equivalence guarantee falls
out of that sharing:

1. count + trace the request (``service.requests``, ``service.request``
   span);
2. per-tenant token bucket (:mod:`repro.service.ratelimit`);
3. admission control — at ``max_inflight`` concurrent backend calls a
   query request is *shed* to the last-known-good answer, served STALE
   (:mod:`repro.service.admission`), never queued;
4. circuit breaker around the backend (:mod:`repro.service.breaker`) —
   an open breaker also takes the LKG shed path;
5. service-level fault injection (``service_error`` /
   ``service_delay`` in :mod:`repro.faults`), so chaos suites can
   exercise every path above deterministically;
6. the actual :class:`repro.session.RemosSession` call, serialized by
   an asyncio lock (the discrete-event sim is single-threaded), with
   retries funded by a global budget
   (:mod:`repro.service.retrypolicy`);
7. good answers (no FAILED member) refresh the LKG store.

The backend answers in canonical wire dicts; the HTTP edge serializes
them with :func:`repro.service.wire.canonical_json` and the in-process
client reconstructs ``Answer`` objects through the identical
``from_dict`` path a remote client uses.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any

from repro import obs
from repro.service.admission import AdmissionController, LastKnownGoodStore
from repro.service.breaker import CircuitBreaker
from repro.service.ratelimit import TenantRateLimiter
from repro.service.retrypolicy import RetryBudget, call_with_retry
from repro.service.subs import FlowWatcher, SubscriptionHub, flow_channel
from repro.service.wire import WireError, canonical_json, result_body

__all__ = ["BackendFaultError", "RemosService", "ServiceConfig", "SessionBackend"]

log = obs.get_logger(__name__)

#: endpoints that answer from the session and participate in
#: admission control / LKG shedding
QUERY_ENDPOINTS: frozenset[str] = frozenset(
    {"flow_info", "flow_info_many", "topology", "node_info"}
)


class BackendFaultError(RuntimeError):
    """Transient backend failure injected by the service fault point."""


@dataclass
class ServiceConfig:
    """Every hardening knob in one place (see docs/service.md)."""

    # rate limiting (per tenant)
    rate: float = 200.0
    burst: float = 400.0
    # admission control
    max_inflight: int = 64
    lkg_entries: int = 4096
    # circuit breaker
    breaker_window: int = 20
    breaker_threshold: float = 0.5
    breaker_min_calls: int = 5
    breaker_reset_s: float = 5.0
    # retry budget
    retry_deposit_ratio: float = 0.1
    retry_max_attempts: int = 3
    # subscriptions
    subs_capacity: int = 1024
    subs_max_poll_s: float = 30.0
    watch_epsilon_bps: float = 1.0


@dataclass
class SessionBackend:
    """What the service needs from a deployment.

    ``session`` answers queries; ``master`` (optional) contributes its
    health snapshot to ``/v1/health``; ``net`` (optional) carries the
    armed :class:`repro.faults.FaultInjector` consulted by the service
    fault points.
    """

    session: Any
    master: Any = None
    net: Any = None
    lock: asyncio.Lock = field(default_factory=asyncio.Lock)

    @classmethod
    def from_deployment(cls, dep: Any) -> "SessionBackend":
        return cls(session=dep.session(), master=dep.master, net=dep.net)

    @property
    def faults(self) -> Any:
        return getattr(self.net, "faults", None) if self.net is not None else None

    def health(self) -> dict[str, Any]:
        if self.master is not None and hasattr(self.master, "health"):
            return dict(self.master.health())
        return {"kind": "unknown"}


class RemosService:
    """The Remos query plane: sessions as a shared, hardened service."""

    def __init__(self, backend: SessionBackend, config: ServiceConfig | None = None):
        self.backend = backend
        self.config = config or ServiceConfig()
        cfg = self.config
        self.limiter = TenantRateLimiter(rate=cfg.rate, burst=cfg.burst)
        self.admission = AdmissionController(max_inflight=cfg.max_inflight)
        self.lkg = LastKnownGoodStore(max_entries=cfg.lkg_entries)
        self.breaker = CircuitBreaker(
            window=cfg.breaker_window,
            failure_threshold=cfg.breaker_threshold,
            min_calls=cfg.breaker_min_calls,
            reset_s=cfg.breaker_reset_s,
        )
        self.retry_budget = RetryBudget(
            deposit_ratio=cfg.retry_deposit_ratio,
            max_attempts=cfg.retry_max_attempts,
        )
        self.hub = SubscriptionHub(capacity=cfg.subs_capacity)
        self.watcher = FlowWatcher(backend.session, epsilon_bps=cfg.watch_epsilon_bps)
        #: service-side tallies, mirrored into obs counters; the
        #: ``/v1/metrics`` endpoint and the load benchmark read these
        self.stats: dict[str, int] = {
            "requests": 0,
            "live": 0,
            "shed_lkg": 0,
            "rate_limited": 0,
            "overloaded": 0,
            "breaker_open": 0,
            "backend_error": 0,
            "retries": 0,
            "subs_events": 0,
        }

    @classmethod
    def from_deployment(
        cls, dep: Any, config: ServiceConfig | None = None
    ) -> "RemosService":
        return cls(SessionBackend.from_deployment(dep), config)

    # -- dispatch ------------------------------------------------------

    async def dispatch(
        self, endpoint: str, body: dict[str, Any], tenant: str = "anonymous"
    ) -> dict[str, Any]:
        """Serve one request; returns a wire response envelope.

        Raises :class:`WireError` for every policy rejection; the HTTP
        edge (or :class:`DirectClient`) maps that onto status codes.
        """
        self.stats["requests"] += 1
        obs.counter("service.requests", endpoint=endpoint).inc()
        with obs.span("service.request", endpoint=endpoint):
            try:
                self.limiter.admit(tenant)
            except WireError:
                self.stats["rate_limited"] += 1
                obs.counter("service.ratelimited").inc()
                raise
            if endpoint in QUERY_ENDPOINTS:
                return await self._query(endpoint, body)
            if endpoint == "subscribe":
                return await self._subscribe(body)
            if endpoint == "invalidate":
                return await self._invalidate(body)
            if endpoint == "health":
                return result_body(self.health())
            if endpoint == "metrics":
                return result_body(self.metrics())
            raise WireError("not_found", f"unknown endpoint {endpoint!r}")

    # -- query path ----------------------------------------------------

    def _lkg_key(self, endpoint: str, body: dict[str, Any]) -> str:
        return f"{endpoint}:{canonical_json(body)}"

    def _shed(self, key: str, reason: str) -> dict[str, Any]:
        """Serve the LKG answer for ``key`` (STALE) or raise ``reason``."""
        payload = self.lkg.serve_stale(key)
        if payload is None:
            raise WireError(
                "overloaded" if reason == "overloaded" else "breaker_open",
                f"request shed ({reason}) and no last-known-good answer",
                retry_after_s=0.05,
            )
        self.stats["shed_lkg"] += 1
        obs.counter("service.shed", reason=reason).inc()
        return result_body(payload, served="shed_lkg")

    async def _query(self, endpoint: str, body: dict[str, Any]) -> dict[str, Any]:
        key = self._lkg_key(endpoint, body)
        if not self.admission.try_admit():
            try:
                return self._shed(key, "overloaded")
            except WireError:
                self.stats["overloaded"] += 1
                raise
        try:
            obs.gauge("service.inflight").set(self.admission.inflight)
            try:
                self.breaker.before_call()
            except WireError:
                try:
                    return self._shed(key, "breaker_open")
                except WireError:
                    self.stats["breaker_open"] += 1
                    raise
            injector = self.backend.faults
            if injector is not None:
                stall = injector.service_delay()
                if stall > 0:
                    await asyncio.sleep(stall)
            try:
                payload = await self._call_backend(endpoint, body)
            except WireError:
                raise
            except Exception as exc:
                self.breaker.record(False)
                log.warning("backend error on %s: %s", endpoint, exc)
                try:
                    return self._shed(key, "backend_error")
                except WireError:
                    self.stats["backend_error"] += 1
                    raise WireError(
                        "backend_error", f"{type(exc).__name__}: {exc}"
                    ) from exc
            self.breaker.record(True)
            self.stats["live"] += 1
            self.lkg.store(key, payload)
            obs.gauge("service.lkg_entries").set(len(self.lkg))
            return result_body(payload, served="live")
        finally:
            self.admission.release()

    async def _call_backend(self, endpoint: str, body: dict[str, Any]) -> Any:
        """Run the session call under the backend lock, retries budgeted."""

        def on_retry(attempt: int) -> None:
            self.stats["retries"] += 1
            obs.counter("service.retries").inc()

        def run() -> Any:
            injector = self.backend.faults
            if injector is not None and injector.service_error():
                raise BackendFaultError("injected service backend fault")
            return self._route(endpoint, body)

        async with self.backend.lock:
            # yield once while holding the lock: the sim backend is
            # synchronous, so without this a request would run to
            # completion before the loop ever schedules a concurrent
            # arrival — admission control would never see real
            # contention and overload could not shed
            await asyncio.sleep(0)
            with obs.span("service.backend", endpoint=endpoint):
                return call_with_retry(run, self.retry_budget, on_retry)

    def _route(self, endpoint: str, body: dict[str, Any]) -> Any:
        """Translate a wire body into the session call; returns wire dicts."""
        session = self.backend.session
        try:
            if endpoint == "flow_info":
                ans = session.flow_info(
                    body["src"],
                    body["dst"],
                    predict=bool(body.get("predict", False)),
                    horizon_steps=int(body.get("horizon_steps", 1)),
                )
                return ans.to_dict()
            if endpoint == "flow_info_many":
                pairs = [(p[0], p[1]) for p in body["pairs"]]
                own = body.get("own_flows")
                own_flows = [(o[0], o[1], float(o[2])) for o in own] if own else None
                answers = session.flow_info_many(
                    pairs,
                    predict=bool(body.get("predict", False)),
                    horizon_steps=int(body.get("horizon_steps", 1)),
                    own_flows=own_flows,
                )
                return [a.to_dict() for a in answers]
            if endpoint == "topology":
                ans = session.topology(
                    body["hosts"],
                    detail=str(body.get("detail", "simplified")),
                    include_dynamics=bool(body.get("include_dynamics", True)),
                )
                return ans.to_dict()
            if endpoint == "node_info":
                answers = session.node_info(
                    body["hosts"],
                    predict=bool(body.get("predict", False)),
                    horizon_steps=int(body.get("horizon_steps", 1)),
                )
                return [a.to_dict() for a in answers]
        except (KeyError, IndexError, TypeError, ValueError) as exc:
            raise WireError("bad_request", f"bad arguments: {exc}") from exc
        raise WireError("not_found", f"unknown endpoint {endpoint!r}")

    # -- plumbing endpoints --------------------------------------------

    async def _invalidate(self, body: dict[str, Any]) -> dict[str, Any]:
        sites = body.get("sites")
        if sites is not None and not isinstance(sites, list):
            raise WireError("bad_request", "sites must be a list of site names")
        async with self.backend.lock:
            self.backend.session.invalidate_cache(sites)
        evicted = self.lkg.invalidate(sites)
        obs.gauge("service.lkg_entries").set(len(self.lkg))
        return result_body({"invalidated_lkg": evicted, "sites": sites})

    async def _subscribe(self, body: dict[str, Any]) -> dict[str, Any]:
        pairs = body.get("pairs") or []
        try:
            channels = [flow_channel(str(p[0]), str(p[1])) for p in pairs] or None
            for p in pairs:
                self.watcher.watch(str(p[0]), str(p[1]))
        except (IndexError, TypeError) as exc:
            raise WireError("bad_request", f"bad pairs: {exc}") from exc
        since = int(body.get("since", 0))
        timeout_s = min(
            float(body.get("timeout_s", 0.0)), self.config.subs_max_poll_s
        )
        resume_lost = self.hub.resume_lost(since)
        if timeout_s > 0 and not resume_lost:
            events = await self.hub.wait(channels, since, timeout_s)
        else:
            events = self.hub.events_since(channels, since)
        return result_body(
            {
                "events": events,
                "seq": self.hub.seq,
                "oldest_seq": self.hub.oldest_seq,
                "resume_lost": resume_lost,
            }
        )

    def tick_subscriptions(self) -> int:
        """Poll watched flows once, publishing changes to the hub.

        Driven by the server's background task in wall time, or called
        directly by tests that own the sim clock.
        """
        published = self.watcher.tick(self.hub)
        if published:
            self.stats["subs_events"] += published
            obs.counter("service.subs_events").inc(published)
        return published

    # -- introspection -------------------------------------------------

    def health(self) -> dict[str, Any]:
        return {
            "status": "ok" if self.breaker.state == "closed" else "degraded",
            "breaker": self.breaker.state,
            "inflight": self.admission.inflight,
            "max_inflight": self.admission.max_inflight,
            "lkg_entries": len(self.lkg),
            "subs": {
                "seq": self.hub.seq,
                "published": self.hub.published,
                "watched_pairs": len(self.watcher.pairs),
            },
            "backend": self.backend.health(),
        }

    def metrics(self) -> dict[str, Any]:
        obs.gauge("service.breaker_transitions").set(self.breaker.transitions)
        # registry is empty under the default NullRegistry; `repro serve`
        # installs a live one so this carries the service.* catalogue
        registry = obs.export.snapshot(obs.get_registry(), max_spans=16)
        return {
            "stats": dict(self.stats),
            "breaker_transitions": self.breaker.transitions,
            "retry_tokens": self.retry_budget.tokens,
            "lkg_entries": len(self.lkg),
            "registry": registry,
        }
