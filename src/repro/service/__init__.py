"""repro.service — Remos as a network service.

The paper positions Remos as a *shared* query service for grid
applications; this package puts the reproduction on the wire.  An
asyncio HTTP/JSON query plane wraps :class:`repro.session.RemosSession`
(flow_info, flow_info_many, topology, node_info, invalidate_cache) and
adds the production-hardening primitives a shared service needs:

* :mod:`repro.service.ratelimit` — per-tenant token-bucket rate limits;
* :mod:`repro.service.breaker` — a circuit breaker around the
  collector/Master backend;
* :mod:`repro.service.retrypolicy` — retry with a global budget, so a
  failing backend is not amplified by a retry storm;
* :mod:`repro.service.admission` — admission control that *sheds* to
  last-known-good answers (served ``STALE``) under overload instead of
  queuing requests until they time out;
* :mod:`repro.service.subs` — long-poll subscriptions for flow updates.

The wire contract is the PR 4 ``Answer``/``QueryStatus`` family
serialized canonically (schema v1, ``to_dict``/``from_dict``), carrying
``trace_id``/``provenance``/``data_age_s`` across the wire so
``repro trace`` and the flight recorder keep working for remote
clients.  See ``docs/service.md`` for endpoints and knobs, and
``repro serve`` for the CLI entry point.
"""

from __future__ import annotations

from repro.service.app import RemosService, ServiceConfig, SessionBackend
from repro.service.client import DirectClient, HttpServiceClient, ServiceError
from repro.service.http import start_server
from repro.service.wire import WIRE_SCHEMA_VERSION, canonical_json

__all__ = [
    "DirectClient",
    "HttpServiceClient",
    "RemosService",
    "ServiceConfig",
    "ServiceError",
    "SessionBackend",
    "WIRE_SCHEMA_VERSION",
    "canonical_json",
    "start_server",
]
