"""Per-tenant token-bucket rate limiting for the query service.

A shared Remos service multiplexes many applications; one chatty
tenant must not starve the rest (the paper's motivation for a shared
Collector already — queries are aggregated *because* per-application
probing would melt the network).  Each tenant gets a classic token
bucket: ``rate`` tokens/second refill, ``burst`` capacity, one token
per request.  An empty bucket rejects immediately with
``rate_limited`` and a ``retry_after_s`` hint rather than queuing —
queues under overload only convert rejection into timeout.

The clock is injectable so tests drive it deterministically
(:class:`repro.obs.timebase.FixedTimebase`); the default is the
sanctioned wall clock :func:`repro.obs.timebase.wall_now`.
"""

from __future__ import annotations

from typing import Callable

from repro.obs.timebase import wall_now
from repro.service.wire import WireError

__all__ = ["TokenBucket", "TenantRateLimiter"]


class TokenBucket:
    """A single token bucket: ``rate`` tokens/s refill, ``burst`` cap."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = wall_now,
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst, self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def try_take(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    def retry_after_s(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will be available (0 if now)."""
        self._refill()
        deficit = n - self._tokens
        return max(0.0, deficit / self.rate)

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


class TenantRateLimiter:
    """Lazily-created per-tenant buckets with a shared default policy.

    Unknown tenants (no ``X-Remos-Tenant`` header) share the
    ``"anonymous"`` bucket, so an unauthenticated flood is throttled as
    one tenant instead of minting unlimited fresh buckets.
    """

    def __init__(
        self,
        rate: float = 200.0,
        burst: float = 400.0,
        clock: Callable[[], float] = wall_now,
        max_tenants: int = 10_000,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._max_tenants = int(max_tenants)
        self._buckets: dict[str, TokenBucket] = {}

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            if tenant != "anonymous" and len(self._buckets) >= self._max_tenants:
                # cardinality guard: treat overflow tenants as anonymous
                # (whose bucket is always allowed to exist)
                return self._bucket("anonymous")
            bucket = TokenBucket(self.rate, self.burst, self._clock)
            self._buckets[tenant] = bucket
        return bucket

    def admit(self, tenant: str) -> None:
        """Take one token for ``tenant`` or raise ``rate_limited``."""
        bucket = self._bucket(tenant or "anonymous")
        if not bucket.try_take():
            raise WireError(
                "rate_limited",
                f"tenant {tenant or 'anonymous'!r} exceeded "
                f"{self.rate:g} req/s (burst {self.burst:g})",
                retry_after_s=bucket.retry_after_s(),
            )

    def tokens(self, tenant: str) -> float:
        """Remaining tokens for ``tenant`` (for tests and /v1/health)."""
        return self._bucket(tenant or "anonymous").tokens
