"""Wire contract for the Remos query service (schema v1).

Everything that crosses the service boundary is JSON in *canonical
form*: keys sorted, no whitespace, produced by :func:`canonical_json`.
Canonical form is what makes the equivalence guarantee testable — an
answer serialized twice is byte-identical, so "the wire returns the
same Answer as an in-process call" can be asserted on raw bytes, not
just on parsed structures.

The payloads themselves are the PR 4 ``Answer``/``QueryStatus`` family
rendered through their ``to_dict``/``from_dict`` methods (see
:mod:`repro.modeler.api`); this module only adds the request/response
*envelopes* around them and the service error vocabulary.

Note on numbers: link capacities can legitimately be ``inf`` (the
paper's "unknown capacity" convention), and Python's :mod:`json`
round-trips ``Infinity`` natively.  Both ends of this wire are this
codebase, so we keep that extension rather than inventing a sentinel.
"""

from __future__ import annotations

import json
from typing import Any

from repro.modeler.api import WIRE_SCHEMA_VERSION, Answer

__all__ = [
    "WIRE_SCHEMA_VERSION",
    "ERROR_CODES",
    "WireError",
    "canonical_json",
    "decode_body",
    "error_body",
    "result_body",
    "parse_result",
]

#: Stable error vocabulary.  Clients switch on ``code``, never on the
#: human-readable ``message``.
ERROR_CODES: frozenset[str] = frozenset(
    {
        "bad_request",  # malformed JSON, unknown field, missing argument
        "not_found",  # unknown endpoint / schema version
        "rate_limited",  # tenant token bucket empty
        "overloaded",  # admission control shed and no LKG available
        "breaker_open",  # backend circuit breaker rejecting calls
        "backend_error",  # Modeler/Master raised after retries
    }
)


class WireError(Exception):
    """A service-level failure with a wire error code.

    Raised by the hardening layers (rate limiter, breaker, admission
    control) and mapped onto an HTTP status + canonical error body at
    the edge.
    """

    def __init__(self, code: str, message: str, *, retry_after_s: float = 0.0) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown wire error code: {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s


def canonical_json(obj: Any) -> str:
    """Serialize ``obj`` to the canonical wire form.

    Sorted keys and compact separators: the same dict always yields the
    same bytes, which the round-trip property tests (and the over-the-
    wire equivalence test) rely on.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def decode_body(raw: bytes) -> dict[str, Any]:
    """Parse a request body, raising ``WireError(bad_request)`` on junk."""
    try:
        obj = json.loads(raw.decode("utf-8") if raw else "{}")
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError("bad_request", f"invalid JSON body: {exc}") from None
    if not isinstance(obj, dict):
        raise WireError("bad_request", "request body must be a JSON object")
    return obj


# -- response envelopes ------------------------------------------------


def result_body(result: Any, *, served: str = "live") -> dict[str, Any]:
    """Success envelope.

    ``result`` is an ``Answer``, a list of answers, or a plain dict
    (health, metrics, subscription events).  ``served`` records whether
    the backend answered live or admission control shed to a
    last-known-good answer (``"shed_lkg"``).
    """
    if isinstance(result, Answer):
        payload: Any = result.to_dict()
    elif isinstance(result, list):
        payload = [a.to_dict() if isinstance(a, Answer) else a for a in result]
    else:
        payload = result
    return {"schema": WIRE_SCHEMA_VERSION, "ok": True, "served": served, "result": payload}


def error_body(err: WireError) -> dict[str, Any]:
    """Error envelope for a :class:`WireError`."""
    body: dict[str, Any] = {
        "schema": WIRE_SCHEMA_VERSION,
        "ok": False,
        "error": {"code": err.code, "message": err.message},
    }
    if err.retry_after_s > 0:
        body["error"]["retry_after_s"] = err.retry_after_s
    return body


def parse_result(body: dict[str, Any]) -> Any:
    """Client-side inverse of :func:`result_body`.

    Returns reconstructed ``Answer`` objects (single or list) when the
    payload carries the ``kind`` discriminator, the raw payload
    otherwise.  Raises :class:`WireError` for error envelopes so
    callers handle one exception type end to end.
    """
    if body.get("schema") != WIRE_SCHEMA_VERSION:
        raise WireError("not_found", f"unsupported schema: {body.get('schema')!r}")
    if not body.get("ok"):
        err = body.get("error") or {}
        raise WireError(
            err.get("code", "backend_error"),
            err.get("message", "unknown service error"),
            retry_after_s=float(err.get("retry_after_s", 0.0)),
        )
    payload = body.get("result")
    if isinstance(payload, dict) and "kind" in payload:
        return Answer.from_dict(payload)
    if isinstance(payload, list):
        return [
            Answer.from_dict(p) if isinstance(p, dict) and "kind" in p else p
            for p in payload
        ]
    return payload
