"""Clients for the Remos query service.

Two transports, one surface:

* :class:`HttpServiceClient` — a real TCP client (stdlib asyncio,
  HTTP/1.1 keep-alive) for talking to ``repro serve``;
* :class:`DirectClient` — in-process, calling
  :meth:`RemosService.dispatch` directly.  The closed-loop load
  benchmark runs thousands of these concurrently without burning file
  descriptors, while still traversing the full dispatch pipeline
  (rate limit, admission, breaker, serialization) — only the socket
  hop is skipped.

Both deserialize results through :func:`repro.service.wire.parse_result`,
so callers receive reconstructed ``Answer`` objects exactly as a
remote application would, and both surface policy rejections as
:class:`ServiceError` (carrying the wire error code).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

from repro.service.app import RemosService
from repro.service.wire import WireError, canonical_json, parse_result

__all__ = ["ServiceError", "DirectClient", "HttpServiceClient"]

#: re-export under the client-facing name: callers catch one exception
#: type regardless of transport
ServiceError = WireError


class _BaseClient:
    """Shared convenience wrappers over ``call(endpoint, body)``."""

    async def call(self, endpoint: str, body: dict[str, Any]) -> dict[str, Any]:
        raise NotImplementedError

    async def request(self, endpoint: str, body: dict[str, Any]) -> Any:
        """Call and deserialize; raises :class:`ServiceError` on errors."""
        return parse_result(await self.call(endpoint, body))

    async def served(self, endpoint: str, body: dict[str, Any]) -> tuple[Any, str]:
        """Like :meth:`request` but also reports live vs shed_lkg."""
        envelope = await self.call(endpoint, body)
        return parse_result(envelope), str(envelope.get("served", "live"))

    # -- the Remos API, one coroutine per endpoint ---------------------

    async def flow_info(self, src: str, dst: str, **kw: Any) -> Any:
        return await self.request("flow_info", {"src": str(src), "dst": str(dst), **kw})

    async def flow_info_many(self, pairs: Any, **kw: Any) -> Any:
        body = {"pairs": [[str(s), str(d)] for s, d in pairs], **kw}
        return await self.request("flow_info_many", body)

    async def topology(self, hosts: Any, **kw: Any) -> Any:
        return await self.request("topology", {"hosts": [str(h) for h in hosts], **kw})

    async def node_info(self, hosts: Any, **kw: Any) -> Any:
        return await self.request("node_info", {"hosts": [str(h) for h in hosts], **kw})

    async def invalidate(self, sites: Any = None) -> Any:
        body = {"sites": None if sites is None else [str(s) for s in sites]}
        return await self.request("invalidate", body)

    async def subscribe(
        self, pairs: Any, since: int = 0, timeout_s: float = 0.0
    ) -> Any:
        body = {
            "pairs": [[str(s), str(d)] for s, d in pairs],
            "since": int(since),
            "timeout_s": float(timeout_s),
        }
        return await self.request("subscribe", body)

    async def health(self) -> Any:
        return await self.request("health", {})

    async def metrics(self) -> Any:
        return await self.request("metrics", {})


class DirectClient(_BaseClient):
    """In-process client: full dispatch pipeline, no socket."""

    def __init__(self, service: RemosService, tenant: str = "anonymous") -> None:
        self.service = service
        self.tenant = tenant

    async def call(self, endpoint: str, body: dict[str, Any]) -> dict[str, Any]:
        # round-trip the body through canonical JSON so in-process
        # callers cannot smuggle non-wire types past the dispatcher
        wire_body = json.loads(canonical_json(body))
        return await self.service.dispatch(endpoint, wire_body, tenant=self.tenant)


class HttpServiceClient(_BaseClient):
    """Keep-alive HTTP/1.1 client over one TCP connection.

    Not safe for concurrent calls on one instance (requests are
    pipelined strictly one at a time); open one client per concurrent
    task, as the load benchmark's wire phase does.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8077,
        tenant: str = "anonymous",
        timeout_s: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout_s = timeout_s
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        if self._writer is not None:
            return
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            self._reader = self._writer = None

    async def __aenter__(self) -> "HttpServiceClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    async def call(self, endpoint: str, body: dict[str, Any]) -> dict[str, Any]:
        await self.connect()
        assert self._reader is not None and self._writer is not None
        payload = canonical_json(body).encode("utf-8")
        head = (
            f"POST /v1/{endpoint} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"X-Remos-Tenant: {self.tenant}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: keep-alive\r\n"
            "\r\n"
        )
        self._writer.write(head.encode("latin-1") + payload)
        await self._writer.drain()
        return await asyncio.wait_for(self._read_response(), self.timeout_s)

    async def _read_response(self) -> dict[str, Any]:
        assert self._reader is not None
        status_line = await self._reader.readline()
        if not status_line:
            raise ServiceError("backend_error", "server closed the connection")
        length = 0
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        raw = await self._reader.readexactly(length) if length else b""
        envelope = json.loads(raw.decode("utf-8"))
        if not isinstance(envelope, dict):
            raise ServiceError("backend_error", "malformed response envelope")
        return envelope
