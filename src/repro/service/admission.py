"""Admission control with shed-to-STALE.

The paper's whole design accepts staleness as the price of scalability
(cached collector data, SNMP polling intervals); the service plane
extends the same bargain to overload.  When more requests are in
flight than the backend can serve concurrently, new requests are not
queued — queuing under overload turns "slow" into "timed out" for
everyone.  Instead the request is *shed* to the last-known-good (LKG)
answer for the same query, served with ``status=STALE`` and a
``data_age_s`` that includes the shelf time.  Only when no LKG exists
does the client see an ``overloaded`` error.

The LKG store keeps answers in canonical wire form (plain dicts), so a
shed response is isolated from later mutation of live answers and
exercises exactly the serialization path a remote client sees.
Results containing any ``FAILED`` answer are never stored — a shed
must not launder a failure into a plausible-looking STALE answer.
Site-scoped invalidation mirrors ``RemosSession.invalidate_cache``:
entries whose provenance intersects the named sites are dropped.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Iterable

from repro.common.status import QueryStatus
from repro.obs.timebase import wall_now
from repro.service.wire import WireError

__all__ = ["LastKnownGoodStore", "AdmissionController"]


def _iter_answer_dicts(payload: Any) -> Iterable[dict[str, Any]]:
    if isinstance(payload, dict):
        yield payload
    elif isinstance(payload, list):
        for item in payload:
            if isinstance(item, dict):
                yield item


class LastKnownGoodStore:
    """LRU store of the freshest good answer per query key.

    Keys are canonical request strings (endpoint + canonical body), so
    identical queries from different tenants share one entry — LKG is
    about the *data*, which is tenant-independent, not the caller.
    """

    def __init__(
        self,
        max_entries: int = 4096,
        clock: Callable[[], float] = wall_now,
    ) -> None:
        self.max_entries = int(max_entries)
        self._clock = clock
        # key -> (stored_at, wire payload dict-or-list)
        self._entries: OrderedDict[str, tuple[float, Any]] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def store(self, key: str, payload: Any) -> bool:
        """Remember ``payload`` (wire dict or list of wire dicts).

        Returns False (and stores nothing) if any answer in the payload
        is FAILED: shedding must never replay a failure as data.
        """
        failed = QueryStatus.FAILED.to_dict()
        for d in _iter_answer_dicts(payload):
            if d.get("status") == failed:
                return False
        self._entries.pop(key, None)
        self._entries[key] = (self._clock(), payload)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return True

    def serve_stale(self, key: str) -> Any | None:
        """The LKG payload for ``key``, restamped as a shed answer.

        Every answer's status is degraded to ``STALE`` (unless already
        worse than stale — PARTIAL and STALE stay as they are) and its
        ``data_age_s`` grows by the wall-clock shelf time, so a client
        can tell exactly how old the shed answer is.  Returns ``None``
        when no entry exists.
        """
        entry = self._entries.get(key)
        if entry is None:
            return None
        self._entries.move_to_end(key)
        stored_at, payload = entry
        age_bonus = max(0.0, self._clock() - stored_at)
        stale = QueryStatus.STALE.to_dict()
        ok = QueryStatus.OK.to_dict()

        def restamp(d: dict[str, Any]) -> dict[str, Any]:
            out = dict(d)
            if out.get("status") == ok:
                out["status"] = stale
            out["data_age_s"] = float(out.get("data_age_s", 0.0)) + age_bonus
            return out

        if isinstance(payload, dict):
            return restamp(payload)
        if isinstance(payload, list):
            return [restamp(d) if isinstance(d, dict) else d for d in payload]
        return payload

    def invalidate(self, sites: Iterable[str] | None = None) -> int:
        """Drop entries; scoped by provenance when ``sites`` is given.

        Mirrors ``RemosSession.invalidate_cache(sites=...)`` semantics:
        ``None`` flushes everything, otherwise only entries with at
        least one answer whose provenance intersects ``sites`` go.
        Returns the number of evicted entries.
        """
        if sites is None:
            n = len(self._entries)
            self._entries.clear()
            return n
        wanted = set(sites)
        doomed = []
        for key, (_, payload) in self._entries.items():
            for d in _iter_answer_dicts(payload):
                if wanted.intersection(d.get("provenance") or ()):
                    doomed.append(key)
                    break
        for key in doomed:
            del self._entries[key]
        return len(doomed)


class AdmissionController:
    """Bounded-concurrency gate: admit, or shed to LKG, never queue."""

    def __init__(self, max_inflight: int = 64) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        self.max_inflight = int(max_inflight)
        self._inflight = 0

    @property
    def inflight(self) -> int:
        return self._inflight

    def try_admit(self) -> bool:
        """Claim a slot; the caller must pair with :meth:`release`."""
        if self._inflight >= self.max_inflight:
            return False
        self._inflight += 1
        return True

    def release(self) -> None:
        self._inflight = max(0, self._inflight - 1)

    def shed(self, store: LastKnownGoodStore, key: str) -> Any:
        """LKG payload for a rejected request, or ``overloaded``."""
        payload = store.serve_stale(key)
        if payload is None:
            raise WireError(
                "overloaded",
                f"service at max_inflight={self.max_inflight} and no "
                "last-known-good answer for this query",
                retry_after_s=0.05,
            )
        return payload
