"""Circuit breaker around the collector/Master backend.

When the Master (or the Modeler's own computation) starts failing, the
worst response is to keep hammering it: the session layer already
retries per-site, so service-level retries multiply load exactly when
capacity is lowest.  The breaker watches a sliding window of backend
outcomes and, past a failure threshold, *opens*: calls are rejected
immediately with ``breaker_open`` (clients get the LKG shed path
instead, see :mod:`repro.service.admission`).  After ``reset_s`` it
goes *half-open* and lets a limited number of probes through; success
closes it, failure re-opens it.

States follow the classic pattern: ``closed`` -> ``open`` ->
``half_open`` -> (``closed`` | ``open``).  The clock is injectable for
deterministic tests.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.obs.timebase import wall_now
from repro.service.wire import WireError

__all__ = ["CircuitBreaker"]


class CircuitBreaker:
    """Sliding-window circuit breaker with half-open probing."""

    def __init__(
        self,
        window: int = 20,
        failure_threshold: float = 0.5,
        min_calls: int = 5,
        reset_s: float = 5.0,
        half_open_probes: int = 2,
        clock: Callable[[], float] = wall_now,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError("failure_threshold must be in (0, 1]")
        self.window = int(window)
        self.failure_threshold = float(failure_threshold)
        self.min_calls = int(min_calls)
        self.reset_s = float(reset_s)
        self.half_open_probes = int(half_open_probes)
        self._clock = clock
        self._outcomes: deque[bool] = deque(maxlen=self.window)  # True = ok
        self._state = "closed"
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._transitions = 0

    # -- state ---------------------------------------------------------

    @property
    def state(self) -> str:
        """Current state, advancing open -> half_open on timeout."""
        if self._state == "open" and self._clock() - self._opened_at >= self.reset_s:
            self._state = "half_open"
            self._probes_in_flight = 0
            self._transitions += 1
        return self._state

    @property
    def transitions(self) -> int:
        """State changes so far (exported on /v1/health)."""
        return self._transitions

    def _failure_rate(self) -> float:
        if not self._outcomes:
            return 0.0
        return 1.0 - sum(self._outcomes) / len(self._outcomes)

    def _trip(self) -> None:
        self._state = "open"
        self._opened_at = self._clock()
        self._outcomes.clear()
        self._transitions += 1

    # -- call protocol -------------------------------------------------

    def before_call(self) -> None:
        """Gate a backend call; raises ``breaker_open`` when rejecting."""
        state = self.state
        if state == "closed":
            return
        if state == "half_open":
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return
            raise WireError(
                "breaker_open",
                "backend circuit half-open: probe quota in use",
                retry_after_s=self.reset_s / 2,
            )
        raise WireError(
            "breaker_open",
            "backend circuit open after repeated failures",
            retry_after_s=max(0.0, self.reset_s - (self._clock() - self._opened_at)),
        )

    def record(self, ok: bool) -> None:
        """Record one backend outcome and update state."""
        state = self.state
        if state == "half_open":
            self._probes_in_flight = max(0, self._probes_in_flight - 1)
            if ok:
                self._state = "closed"
                self._outcomes.clear()
                self._transitions += 1
            else:
                self._trip()
            return
        self._outcomes.append(ok)
        if (
            state == "closed"
            and len(self._outcomes) >= self.min_calls
            and self._failure_rate() >= self.failure_threshold
        ):
            self._trip()
