"""Retry with a global budget.

Unbounded per-request retries turn a brown-out into a blackout: if the
backend answers 50% of calls, two retries per request triple its load.
A *retry budget* caps the aggregate: every incoming request deposits
``deposit_ratio`` tokens into a shared bucket and every retry withdraws
one, so total retries can never exceed ``deposit_ratio`` × request
volume no matter how unlucky individual requests are.  (Same shape as
the site-quarantine budget already used by the Master; here it guards
the whole backend.)

Transient backend exceptions are retried while the budget allows;
``WireError`` is never retried (those are policy decisions, not
transient faults).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.service.wire import WireError

__all__ = ["RetryBudget", "call_with_retry"]


class RetryBudget:
    """Shared token bucket funded by request volume."""

    def __init__(
        self,
        deposit_ratio: float = 0.1,
        max_tokens: float = 100.0,
        max_attempts: int = 3,
    ) -> None:
        if deposit_ratio < 0:
            raise ValueError("deposit_ratio must be >= 0")
        self.deposit_ratio = float(deposit_ratio)
        self.max_tokens = float(max_tokens)
        self.max_attempts = int(max_attempts)
        self._tokens = float(max_tokens)

    def deposit(self) -> None:
        """Fund the budget: called once per incoming request."""
        self._tokens = min(self.max_tokens, self._tokens + self.deposit_ratio)

    def try_withdraw(self) -> bool:
        """Spend one retry token if available."""
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    @property
    def tokens(self) -> float:
        return self._tokens


def call_with_retry(
    fn: Callable[[], Any],
    budget: RetryBudget,
    on_retry: Callable[[int], None] | None = None,
) -> Any:
    """Run ``fn``, retrying transient exceptions within the budget.

    The first attempt is free (it is the request itself); each retry
    needs a budget token.  ``on_retry(attempt)`` is called before every
    retry so the service can count them.  The last exception propagates
    when attempts or budget run out.
    """
    budget.deposit()
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except WireError:
            raise  # policy rejections are not transient
        except Exception:
            if attempt >= budget.max_attempts or not budget.try_withdraw():
                raise
            if on_retry is not None:
                on_retry(attempt)
