"""Grid Monitoring Architecture (GMA) compatibility layer.

Paper §4 maps Remos onto the Grid Forum's GMA: "each Collector is a
producer.  The Master Collector is a joint consumer/producer ...
Although we view the Modeler as a consumer, it could also be another
joint consumer/producer, providing end-to-end performance predictions
using the component data available from the collectors as a service to
other applications."  This module realises that mapping:

* :class:`GmaEvent` — a typed, timestamped monitoring event.
* :class:`Producer` — query/response and subscription interfaces.
* :class:`GmaDirectory` — the GMA directory service: producers register
  the event types they serve; consumers discover them.
* :class:`CollectorProducer` — any Remos collector as a producer of
  ``remos.topology`` and ``remos.history`` events (the Master, being a
  Collector, is automatically the "joint consumer/producer").
* :class:`ModelerProducer` — the Modeler as a producer of
  ``remos.flow`` events (end-to-end predictions as a service).

Subscriptions are periodic deliveries on the simulation clock — the
streaming half of GMA's producer interface.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

from repro.common.errors import QueryError
from repro.netsim.engine import Timer
from repro.netsim.topology import Network

#: well-known Remos event types
EVENT_TOPOLOGY = "remos.topology"
EVENT_HISTORY = "remos.history"
EVENT_FLOW = "remos.flow"


@dataclass
class GmaEvent:
    """One monitoring event."""

    type: str
    source: str
    timestamp: float
    payload: object


class Consumer(ABC):
    """Anything that can receive events."""

    @abstractmethod
    def deliver(self, event: GmaEvent) -> None: ...


class CollectingConsumer(Consumer):
    """A consumer that just accumulates events (tests, simple apps)."""

    def __init__(self) -> None:
        self.events: list[GmaEvent] = []

    def deliver(self, event: GmaEvent) -> None:
        self.events.append(event)


class Subscription:
    """A periodic event stream from a producer to a consumer."""

    def __init__(self, timer: Timer) -> None:
        self._timer = timer

    def cancel(self) -> None:
        self._timer.cancel()

    @property
    def active(self) -> bool:
        return not self._timer.cancelled


class Producer(ABC):
    """GMA producer: answers queries, serves subscriptions."""

    def __init__(self, name: str, net: Network) -> None:
        self.name = name
        self.net = net
        self.events_produced = 0

    @abstractmethod
    def event_types(self) -> tuple[str, ...]: ...

    @abstractmethod
    def query(self, event_type: str, **params) -> GmaEvent: ...

    def subscribe(
        self,
        event_type: str,
        consumer: Consumer,
        period_s: float,
        **params,
    ) -> Subscription:
        """Deliver a fresh event every ``period_s`` simulated seconds."""
        if event_type not in self.event_types():
            raise QueryError(f"{self.name} does not produce {event_type}")

        def tick() -> None:
            try:
                consumer.deliver(self.query(event_type, **params))
            except QueryError:
                pass  # transiently unanswerable: skip this period

        timer = self.net.engine.every(period_s, tick)
        return Subscription(timer)

    def _emit(self, event_type: str, payload: object) -> GmaEvent:
        self.events_produced += 1
        return GmaEvent(event_type, self.name, self.net.now, payload)


class GmaDirectory:
    """The GMA directory service: event type -> producers."""

    def __init__(self) -> None:
        self._producers: dict[str, list[Producer]] = {}

    def register(self, producer: Producer) -> None:
        for et in producer.event_types():
            entries = self._producers.setdefault(et, [])
            if producer not in entries:
                entries.append(producer)

    def unregister(self, producer: Producer) -> None:
        for entries in self._producers.values():
            if producer in entries:
                entries.remove(producer)

    def find(self, event_type: str) -> list[Producer]:
        return list(self._producers.get(event_type, []))

    def event_types(self) -> list[str]:
        return sorted(self._producers)


class CollectorProducer(Producer):
    """A Remos collector exposed through the GMA producer interface.

    Wrapping the Master Collector yields GMA's "joint consumer/
    producer": it consumes from the other collectors when queried.
    """

    def __init__(self, collector) -> None:
        super().__init__(f"gma:{collector.name}", collector.net)
        self.collector = collector

    def event_types(self) -> tuple[str, ...]:
        return (EVENT_TOPOLOGY, EVENT_HISTORY)

    def query(self, event_type: str, **params) -> GmaEvent:
        from repro.collectors.base import HistoryRequest, TopologyRequest

        if event_type == EVENT_TOPOLOGY:
            node_ips = params.get("node_ips")
            if not node_ips:
                raise QueryError("topology query needs node_ips")
            resp = self.collector.topology(TopologyRequest.of(node_ips))
            return self._emit(EVENT_TOPOLOGY, resp)
        if event_type == EVENT_HISTORY:
            a, b = params.get("edge_a"), params.get("edge_b")
            if not a or not b:
                raise QueryError("history query needs edge_a and edge_b")
            resp = self.collector.history(HistoryRequest(a, b))
            if resp is None:
                raise QueryError(f"no history for {a} -- {b}")
            return self._emit(EVENT_HISTORY, resp)
        raise QueryError(f"unknown event type {event_type}")


class ModelerProducer(Producer):
    """The Modeler as a producer of end-to-end flow predictions."""

    def __init__(self, modeler) -> None:
        from repro.session import RemosSession

        super().__init__("gma:modeler", modeler.net)
        self.modeler = modeler
        self.session = RemosSession(modeler)

    def event_types(self) -> tuple[str, ...]:
        return (EVENT_FLOW,)

    def query(self, event_type: str, **params) -> GmaEvent:
        if event_type != EVENT_FLOW:
            raise QueryError(f"unknown event type {event_type}")
        src, dst = params.get("src"), params.get("dst")
        if src is None or dst is None:
            raise QueryError("flow query needs src and dst")
        # non-strict: a degraded answer flows to subscribers (status and
        # all) instead of blowing up the periodic delivery timer
        answer = self.session.flow_info(
            src, dst, predict=bool(params.get("predict", False))
        )
        return self._emit(EVENT_FLOW, answer)
