"""Rate and size units.

All internal rates are in **bits per second** and all sizes in
**bytes**, matching what SNMP interface counters expose (ifSpeed is in
bits/s, ifInOctets/ifOutOctets count bytes).  The helpers here keep
conversions explicit at module boundaries so the two never mix
silently.
"""

from __future__ import annotations

BITS_PER_BYTE = 8

#: One kilobit per second, in bits/s.
KBPS = 1_000.0
#: One megabit per second, in bits/s.
MBPS = 1_000_000.0
#: One gigabit per second, in bits/s.
GBPS = 1_000_000_000.0


def mbps(x: float) -> float:
    """Convert megabits/s to the internal bits/s representation."""
    return x * MBPS


def to_mbps(rate_bps: float) -> float:
    """Convert an internal bits/s rate to megabits/s."""
    return rate_bps / MBPS


def bytes_for(rate_bps: float, seconds: float) -> float:
    """Bytes transferred at ``rate_bps`` over ``seconds``."""
    return rate_bps * seconds / BITS_PER_BYTE


def seconds_for(nbytes: float, rate_bps: float) -> float:
    """Time to move ``nbytes`` at ``rate_bps``; ``inf`` if the rate is 0."""
    if rate_bps <= 0.0:
        return float("inf")
    return nbytes * BITS_PER_BYTE / rate_bps


def fmt_rate(rate_bps: float) -> str:
    """Human-readable rate, e.g. ``'4.11 Mbps'``."""
    if rate_bps >= GBPS:
        return f"{rate_bps / GBPS:.2f} Gbps"
    if rate_bps >= MBPS:
        return f"{rate_bps / MBPS:.2f} Mbps"
    if rate_bps >= KBPS:
        return f"{rate_bps / KBPS:.2f} Kbps"
    return f"{rate_bps:.0f} bps"
