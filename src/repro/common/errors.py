"""Exception hierarchy for the Remos reproduction.

Every error raised by this package derives from :class:`RemosError`, so
applications can catch one type at the API boundary.  Sub-types mirror
the architectural layers: SNMP transport, topology handling, queries
through the collector stack, and RPS prediction.
"""

from __future__ import annotations


class RemosError(Exception):
    """Base class for all errors raised by the repro package."""


class SnmpError(RemosError):
    """SNMP request failed: unreachable agent, bad community, noSuchName."""


class AgentUnreachableError(SnmpError):
    """The target device exists but refuses or cannot answer SNMP."""


class NoSuchObjectError(SnmpError):
    """The requested OID is not instantiated on the agent."""


class AuthorizationError(SnmpError):
    """Community string rejected or source address not allowed."""


class TopologyError(RemosError):
    """Topology is malformed or discovery could not complete."""


class QueryError(RemosError):
    """A Remos query could not be answered."""


class UnknownHostError(QueryError):
    """A queried host is not covered by any collector."""


class CollectorTimeoutError(QueryError):
    """A collector did not respond within its deadline."""


class PredictionError(RemosError):
    """RPS model fitting or prediction failed."""


class ModelFitError(PredictionError):
    """Insufficient or degenerate data for fitting a model."""
