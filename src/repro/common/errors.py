"""Exception hierarchy for the Remos reproduction.

Every error raised by this package derives from :class:`RemosError`, so
applications can catch one type at the API boundary.  Sub-types mirror
the architectural layers: SNMP transport, topology handling, queries
through the collector stack, and RPS prediction.
"""

from __future__ import annotations


class RemosError(Exception):
    """Base class for all errors raised by the repro package."""


class SnmpError(RemosError):
    """SNMP request failed: unreachable agent, bad community, noSuchName."""


class AgentUnreachableError(SnmpError):
    """The target device exists but refuses or cannot answer SNMP."""


class NoSuchObjectError(SnmpError):
    """The requested OID is not instantiated on the agent."""


class AuthorizationError(SnmpError):
    """Community string rejected or source address not allowed."""


class TopologyError(RemosError):
    """Topology is malformed or discovery could not complete."""


class QueryError(RemosError):
    """A Remos query could not be answered."""


class UnknownHostError(QueryError):
    """A queried host is not covered by any collector."""


class CollectorTimeoutError(QueryError):
    """A collector did not respond within its deadline."""


class CollectorUnavailableError(QueryError):
    """A collector is down, crashed, or quarantined.

    ``site`` names the affected site (when known) and ``agent`` the
    unreachable device or collector, so callers can report *what*
    failed, not just that something did.
    """

    def __init__(self, message: str, site: str | None = None, agent: str | None = None) -> None:
        super().__init__(message)
        self.site = site
        self.agent = agent


class PartialResultError(QueryError):
    """A strict query could only be answered for part of its scope.

    Raised by the legacy (strict) Modeler entry points when some hosts
    or sites could not be covered; ``sites`` lists the degraded sites
    and ``unresolved`` the host addresses left out of the answer.
    """

    def __init__(self, message: str, sites: tuple[str, ...] = (), unresolved: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.sites = tuple(sites)
        self.unresolved = tuple(unresolved)


class PredictionError(RemosError):
    """RPS model fitting or prediction failed."""


class ModelFitError(PredictionError):
    """Insufficient or degenerate data for fitting a model."""
