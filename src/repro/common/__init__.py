"""Shared utilities: units, errors, and deterministic RNG helpers."""

from repro.common.errors import (
    RemosError,
    QueryError,
    SnmpError,
    TopologyError,
    PredictionError,
)
from repro.common.units import (
    BITS_PER_BYTE,
    KBPS,
    MBPS,
    GBPS,
    mbps,
    to_mbps,
    fmt_rate,
)
from repro.common.rng import make_rng

__all__ = [
    "RemosError",
    "QueryError",
    "SnmpError",
    "TopologyError",
    "PredictionError",
    "BITS_PER_BYTE",
    "KBPS",
    "MBPS",
    "GBPS",
    "mbps",
    "to_mbps",
    "fmt_rate",
    "make_rng",
]
