"""Query status vocabulary shared across the collector stack.

Every answer the Remos API returns carries a :class:`QueryStatus` so
applications can tell a fresh, complete answer from a degraded one —
the explicit per-query quality reporting that service-oriented
measurement systems (SONoMA, NWS) expose and the paper's robustness
discussion (§6.2) implies.  Collectors additionally report per-site
detail through :class:`SiteStatus` records, which the Master merges and
the Modeler forwards unchanged.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Iterable


class QueryStatus(enum.Enum):
    """Quality of one answer, from best to worst.

    * ``OK`` — complete and fresh.
    * ``STALE`` — complete, but some data came from a last-known-good
      cache or an overdue monitor.
    * ``PARTIAL`` — some requested scope is missing (a site down, hosts
      unresolved); what is present is trustworthy.
    * ``FAILED`` — nothing useful could be answered.
    """

    OK = "ok"
    STALE = "stale"
    PARTIAL = "partial"
    FAILED = "failed"

    def __str__(self) -> str:  # compact rendering for CLI / logs
        return self.value

    # -- wire schema v1 (docs/service.md) ------------------------------

    def to_dict(self) -> str:
        """Canonical wire form: the status value string."""
        return self.value

    @classmethod
    def from_dict(cls, value: str) -> "QueryStatus":
        return cls(value)


#: severity order used when combining fragment statuses
_RANK = {
    QueryStatus.OK: 0,
    QueryStatus.STALE: 1,
    QueryStatus.PARTIAL: 2,
    QueryStatus.FAILED: 3,
}


@dataclass
class SiteStatus:
    """How one site's fragment of an answer was obtained."""

    site: str
    status: QueryStatus
    #: human-readable reason when degraded ("agent timeout", …)
    detail: str = ""
    #: age of the served data in simulated seconds (0 = fresh)
    data_age_s: float = 0.0
    #: delegation attempts spent on this fragment (retries + 1)
    attempts: int = 1

    # -- wire schema v1 (docs/service.md) ------------------------------

    def to_dict(self) -> dict[str, object]:
        """Canonical wire form, losslessly invertible by :meth:`from_dict`."""
        return {
            "site": self.site,
            "status": self.status.to_dict(),
            "detail": self.detail,
            "data_age_s": self.data_age_s,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "SiteStatus":
        return cls(
            site=str(d["site"]),
            status=QueryStatus.from_dict(str(d["status"])),
            detail=str(d.get("detail", "")),
            data_age_s=float(d.get("data_age_s", 0.0)),
            attempts=int(d.get("attempts", 1)),
        )


def combine(statuses: Iterable[QueryStatus]) -> QueryStatus:
    """Aggregate fragment statuses into one answer-level status.

    All fragments failed → FAILED; any fragment failed or partial →
    PARTIAL (the answer covers only part of the requested scope); any
    stale fragment → STALE; otherwise OK.  An empty sequence is OK —
    no fragment had anything to complain about.
    """
    statuses = list(statuses)
    if not statuses:
        return QueryStatus.OK
    if all(s == QueryStatus.FAILED for s in statuses):
        return QueryStatus.FAILED
    worst = max(statuses, key=_RANK.__getitem__)
    if worst in (QueryStatus.FAILED, QueryStatus.PARTIAL):
        return QueryStatus.PARTIAL
    return worst
