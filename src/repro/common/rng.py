"""Deterministic random number generation.

Experiments must be reproducible run-to-run, so every stochastic
component takes an explicit seed or an already-constructed generator.
``make_rng`` normalises the two spellings.
"""

from __future__ import annotations

import numpy as np


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a numpy Generator from a seed, a Generator, or None.

    Passing an existing Generator returns it unchanged so call sites can
    thread one generator through a pipeline of components.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
