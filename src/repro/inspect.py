"""Deployment introspection: a status report for a running Remos stack.

A monitoring system needs monitoring: operators of the real Remos
debugged it by eyeballing collector state.  :func:`deployment_report`
renders everything observable about a
:class:`~repro.deploy.RemosDeployment` — per-collector cache and
monitor statistics, SNMP traffic spent, benchmark histories, directory
contents — as text; :func:`deployment_stats` returns the same data
structured, for programmatic health checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.units import fmt_rate
from repro.deploy import RemosDeployment


@dataclass
class CollectorStats:
    name: str
    queries_served: int
    pdu_count: int
    timeout_count: int
    cached_paths: int
    cached_route_tables: int
    monitors: int
    monitors_ready: int
    polls_done: int


@dataclass
class BenchmarkStats:
    site: str
    probes_run: int
    bytes_injected: float
    peers: dict[str, tuple[float, float, int]] = field(default_factory=dict)


@dataclass
class DeploymentStats:
    now: float
    collectors: list[CollectorStats]
    benchmarks: list[BenchmarkStats]
    bridge_stations: dict[str, int]
    bridge_moves: dict[str, int]
    directory_sites: list[str]
    modeler_queries: int


def deployment_stats(dep: RemosDeployment) -> DeploymentStats:
    """Collect structured statistics from every component."""
    collectors = []
    for site, coll in sorted(dep.snmp_collectors.items()):
        ready = sum(1 for m in coll.monitors.values() if m.ready)
        collectors.append(
            CollectorStats(
                name=coll.name,
                queries_served=coll.queries_served,
                pdu_count=coll.client.pdu_count,
                timeout_count=coll.client.timeout_count,
                cached_paths=len(coll._paths),
                cached_route_tables=len(coll._route_tables),
                monitors=len(coll.monitors),
                monitors_ready=ready,
                polls_done=coll.polls_done,
            )
        )
    benchmarks = []
    for site, bench in sorted(dep.benchmarks.items()):
        bs = BenchmarkStats(site, bench.probes_run, bench.bytes_injected)
        for peer in sorted(bench.peers):
            hist = bench.history.get(peer)
            if hist:
                vals = [m.throughput_bps for m in hist]
                mean = sum(vals) / len(vals)
                var = sum((v - mean) ** 2 for v in vals) / len(vals)
                bs.peers[peer] = (mean, var**0.5, len(vals))
        benchmarks.append(bs)
    bridge_stations = {}
    bridge_moves = {}
    for site, bc in sorted(dep.bridge_collectors.items()):
        bridge_stations[site] = len(bc.db.station_attach) if bc.db else 0
        bridge_moves[site] = bc.moves_seen
    return DeploymentStats(
        now=dep.net.now,
        collectors=collectors,
        benchmarks=benchmarks,
        bridge_stations=bridge_stations,
        bridge_moves=bridge_moves,
        directory_sites=dep.directory.sites(),
        modeler_queries=dep.modeler.queries_made,
    )


def deployment_report(dep: RemosDeployment) -> str:
    """Render the statistics as an operator-facing text report."""
    s = deployment_stats(dep)
    lines = [
        f"Remos deployment status at t={s.now:.1f}s",
        f"directory sites: {', '.join(s.directory_sites) or '(none)'}",
        f"modeler queries served: {s.modeler_queries}",
        "",
        "SNMP collectors:",
    ]
    for c in s.collectors:
        lines.append(
            f"  {c.name}: {c.queries_served} queries, "
            f"{c.pdu_count} PDUs ({c.timeout_count} timeouts), "
            f"{c.cached_paths} cached paths, "
            f"{c.cached_route_tables} route tables, "
            f"{c.monitors_ready}/{c.monitors} monitors ready, "
            f"{c.polls_done} poll sweeps"
        )
    if s.bridge_stations:
        lines.append("")
        lines.append("bridge collectors:")
        for site in s.bridge_stations:
            lines.append(
                f"  {site}: {s.bridge_stations[site]} stations tracked, "
                f"{s.bridge_moves[site]} moves seen"
            )
    if s.benchmarks:
        lines.append("")
        lines.append("benchmark collectors:")
        for b in s.benchmarks:
            lines.append(
                f"  {b.site}: {b.probes_run} probes, "
                f"{b.bytes_injected / 1e6:.2f} MB injected"
            )
            for peer, (mean, sd, n) in b.peers.items():
                lines.append(
                    f"    -> {peer}: {fmt_rate(mean)} +-{fmt_rate(sd)} (n={n})"
                )
    return "\n".join(lines)
