"""MIB stores and device MIB builders.

A :class:`MibStore` is a sorted map from :class:`~repro.snmp.oid.Oid`
to a value *provider* — either a constant or a zero-argument callable
evaluated at read time (counters read the live simulation state).  The
store supports exact GET and lexicographic GETNEXT, which is all the
collectors need.

``build_router_mib`` / ``build_switch_mib`` populate stores from
simulated devices with the MIB-II subtrees the paper's SNMP Collector
walks (system, ifTable, ipRouteTable) and the Bridge-MIB subtrees the
Bridge Collector walks (dot1dBase, dot1dTpFdbTable).
"""

from __future__ import annotations

import bisect

from repro.common.errors import NoSuchObjectError
from repro.netsim.address import IPv4Address
from repro.netsim.topology import Network, Router, Switch
from repro.snmp import oid as O
from repro.snmp.oid import Oid


class MibStore:
    """Sorted OID -> provider map with GET / GETNEXT semantics."""

    def __init__(self) -> None:
        self._oids: list[Oid] = []
        self._values: dict[Oid, object] = {}

    def put(self, oid: Oid, provider: object) -> None:
        """Insert or replace an entry; callables are evaluated on read."""
        if oid not in self._values:
            bisect.insort(self._oids, oid)
        self._values[oid] = provider

    def remove(self, oid: Oid) -> None:
        if oid in self._values:
            del self._values[oid]
            i = bisect.bisect_left(self._oids, oid)
            if i < len(self._oids) and self._oids[i] == oid:
                self._oids.pop(i)

    def get(self, oid: Oid) -> object:
        """Exact read; raises NoSuchObjectError for missing OIDs."""
        try:
            v = self._values[oid]
        except KeyError:
            raise NoSuchObjectError(str(oid)) from None
        return v() if callable(v) else v

    def get_next(self, oid: Oid) -> tuple[Oid, object]:
        """First entry strictly after ``oid``; raises at end of MIB."""
        i = bisect.bisect_right(self._oids, oid)
        if i >= len(self._oids):
            raise NoSuchObjectError(f"end of MIB after {oid}")
        nxt = self._oids[i]
        v = self._values[nxt]
        return nxt, (v() if callable(v) else v)

    def __len__(self) -> int:
        return len(self._oids)

    def __contains__(self, oid: Oid) -> bool:
        return oid in self._values


def _ip_suffix(ip: IPv4Address) -> tuple[int, ...]:
    return ip.octets()


def _mac_suffix(mac) -> tuple[int, ...]:
    return mac.octets()


#: sysObjectID kind codes under :data:`repro.snmp.oid.SYS_OBJECT_ID_BASE`
_KIND_CODE = {"host": 1, "router": 2, "switch": 3, "hub": 4, "basestation": 5}


def _put_if_table(store: MibStore, device, net: Network) -> None:
    """Populate system + ifTable rows for any device."""
    store.put(O.SYS_DESCR, f"repro simulated {device.kind}")
    # sysObjectID identifies the device model; point it at a synthetic
    # per-kind OID so collectors can tell device classes apart
    store.put(O.SYS_OBJECT_ID, str(O.SYS_OBJECT_ID_BASE + _KIND_CODE.get(device.kind, 0)))
    store.put(O.SYS_NAME, device.name)
    store.put(O.IF_NUMBER, len(device.interfaces))
    for iface in device.interfaces:
        idx = iface.index
        store.put(O.IF_INDEX + idx, idx)
        store.put(O.IF_DESCR + idx, iface.name)
        store.put(O.IF_TYPE + idx, 6)  # ethernetCsmacd
        store.put(O.IF_SPEED + idx, lambda i=iface: int(i.speed_bps))
        store.put(O.IF_PHYS_ADDRESS + idx, str(iface.mac))
        store.put(O.IF_OPER_STATUS + idx, lambda i=iface: 1 if i.link else 2)
        store.put(
            O.IF_IN_OCTETS + idx,
            lambda i=iface, n=net: int(i.in_octets(n.now)),
        )
        store.put(
            O.IF_OUT_OCTETS + idx,
            lambda i=iface, n=net: int(i.out_octets(n.now)),
        )


def build_router_mib(router: Router, net: Network) -> MibStore:
    """MIB-II view of a router: system, ifTable, ipRouteTable.

    Route rows are indexed by destination network address, as in
    RFC 1213; the collector walks ``ipRouteNextHop`` /
    ``ipRouteIfIndex`` / ``ipRouteMask`` columns to rebuild the
    forwarding table and do its own longest-prefix matching.
    """
    store = MibStore()
    _put_if_table(store, router, net)
    store.put(O.IP_FORWARDING, 1)  # acting as a gateway
    supports_cidr = getattr(router, "supports_cidr_mib", True)
    for prefix, next_hop, out_iface in router.routes:
        suffix = _ip_suffix(prefix.network_address)
        store.put(O.IP_ROUTE_DEST + suffix, str(prefix.network_address))
        store.put(O.IP_ROUTE_IF_INDEX + suffix, out_iface.index)
        store.put(O.IP_ROUTE_MASK + suffix, str(prefix.netmask))
        if next_hop is None:
            # Direct route: next hop is the router's own interface address.
            own = out_iface.ip
            store.put(O.IP_ROUTE_NEXT_HOP + suffix, str(own) if own else "0.0.0.0")
            store.put(O.IP_ROUTE_TYPE + suffix, O.ROUTE_TYPE_DIRECT)
        else:
            store.put(O.IP_ROUTE_NEXT_HOP + suffix, str(next_hop))
            store.put(O.IP_ROUTE_TYPE + suffix, O.ROUTE_TYPE_INDIRECT)
        if supports_cidr:
            # RFC 2096 row: index = (dest, mask, tos=0, next hop)
            own = out_iface.ip
            hop = next_hop if next_hop is not None else None
            hop_octets = (hop or (own if own else None))
            hop_suffix = hop_octets.octets() if hop_octets else (0, 0, 0, 0)
            cidr_idx = (
                _ip_suffix(prefix.network_address)
                + _ip_suffix(prefix.netmask)
                + (0,)
                + hop_suffix
            )
            store.put(O.IP_CIDR_ROUTE_IF_INDEX + cidr_idx, out_iface.index)
            store.put(
                O.IP_CIDR_ROUTE_TYPE + cidr_idx,
                O.CIDR_TYPE_LOCAL if next_hop is None else O.CIDR_TYPE_REMOTE,
            )

    # ipNetToMediaTable: the router's ARP view of its attached subnets.
    # A steady-state router has seen every on-link station, so one row
    # per addressed interface in each directly attached network.
    for iface in router.interfaces:
        if iface.network is None:
            continue
        for other in net.addressed_interfaces():
            if other.ip is None or other.ip not in iface.network:
                continue
            if other.device is router:
                continue
            if other.link is None:
                continue  # detached station: its ARP entry has aged out
            suffix = (iface.index,) + other.ip.octets()
            store.put(O.IP_NET_TO_MEDIA_IF_INDEX + suffix, iface.index)
            store.put(O.IP_NET_TO_MEDIA_PHYS_ADDRESS + suffix, str(other.mac))
            store.put(O.IP_NET_TO_MEDIA_NET_ADDRESS + suffix, str(other.ip))
    return store


def build_switch_mib(switch: Switch, net: Network) -> MibStore:
    """Bridge-MIB view of a switch: dot1dBase scalars + the forwarding
    database table, plus a standard ifTable for port speeds/counters.

    The FDB table reads through to ``switch.fdb`` at call time, so host
    moves (re-learned entries) are visible to pollers without rebuilding
    the MIB.
    """
    store = MibStore()
    _put_if_table(store, switch, net)
    store.put(O.DOT1D_BASE_BRIDGE_ADDRESS, str(switch.management_mac()))
    store.put(O.DOT1D_BASE_NUM_PORTS, len(switch.interfaces))
    _rebuild_fdb_rows(store, switch)
    return store


def _rebuild_fdb_rows(store: MibStore, switch: Switch) -> None:
    from repro.netsim.bridging import SELF_PORT
    from repro.snmp.oid import FDB_STATUS_LEARNED, FDB_STATUS_SELF

    for mac, port in switch.fdb.items():
        suffix = _mac_suffix(mac)
        store.put(O.DOT1D_TP_FDB_ADDRESS + suffix, str(mac))
        store.put(
            O.DOT1D_TP_FDB_PORT + suffix,
            lambda sw=switch, m=mac: sw.fdb.get(m, 0),
        )
        store.put(
            O.DOT1D_TP_FDB_STATUS + suffix,
            FDB_STATUS_SELF if port == SELF_PORT else FDB_STATUS_LEARNED,
        )


def build_host_mib(host, net: Network) -> MibStore:
    """Host Resources view of an end host: ifTable + hrProcessorLoad.

    ``hrProcessorLoad`` is "the average, over the last minute, of the
    percentage of time that this processor was not idle" (RFC 2790);
    we map the host's load average to a 0-100 percentage (load 1.0 =
    one busy core = 100).
    """
    store = MibStore()
    _put_if_table(store, host, net)
    store.put(
        O.HR_PROCESSOR_LOAD + 1,
        lambda h=host, n=net: int(min(100.0, 100.0 * h.load(n.now))),
    )
    # hrSystem scalars: a deterministic process count that tracks the
    # load average (a busier machine runs more processes), and a single
    # logged-in user — the simulated hosts are compute nodes, not
    # terminals.  Both are read-through so pollers see load changes.
    store.put(O.HR_SYSTEM_NUM_USERS, 1)
    store.put(
        O.HR_SYSTEM_PROCESSES,
        lambda h=host, n=net: 40 + int(10.0 * h.load(n.now)),
    )
    return store


def build_basestation_mib(bs, net: Network) -> MibStore:
    """Wireless AP view: BSSID, air rate, and the association table.

    The association table is rebuilt on every read (it is small and
    roaming changes it often) by registering one row per *currently*
    associated station; rows for stations that left are removed by
    :func:`refresh_basestation_assoc`, which agents run lazily through
    the read-through provider below.
    """
    store = MibStore()
    _put_if_table(store, bs, net)
    store.put(O.WLAN_BSSID, str(bs.interfaces[0].mac) if bs.interfaces else "")
    store.put(O.WLAN_AIR_RATE, lambda b=bs: int(b.air_rate_bps))
    refresh_basestation_assoc(store, bs)
    return store


def refresh_basestation_assoc(store: MibStore, bs) -> None:
    """Re-sync the association table rows with live associations."""
    live = {mac for mac in bs.associated_stations()}
    # drop rows for stations that roamed away
    stale: list[tuple[int, ...]] = []
    cur = O.WLAN_ASSOC_STATION
    while True:
        try:
            cur, _ = store.get_next(cur)
        except NoSuchObjectError:
            break
        if not cur.starts_with(O.WLAN_ASSOC_STATION):
            break
        suffix = cur.suffix_after(O.WLAN_ASSOC_STATION)
        from repro.netsim.address import MacAddress

        if MacAddress(_suffix_to_int(suffix)) not in live:
            stale.append(suffix)
    for suffix in stale:
        store.remove(O.WLAN_ASSOC_STATION + suffix)
    for mac in sorted(live, key=lambda m: m.value):
        store.put(O.WLAN_ASSOC_STATION + mac.octets(), str(mac))


def refresh_switch_fdb(store: MibStore, switch: Switch) -> None:
    """Re-sync FDB rows after entries were added/removed (host moves).

    Port changes for existing MACs are already live (the port column is
    a read-through callable); this handles row creation/deletion.
    """
    # Remove rows whose MAC vanished.
    stale: list[Oid] = []
    macs = set(switch.fdb)
    i = 0
    while True:
        try:
            nxt, _ = store.get_next(O.DOT1D_TP_FDB_ADDRESS if i == 0 else nxt)
        except NoSuchObjectError:
            break
        if not nxt.starts_with(O.DOT1D_TP_FDB_ADDRESS):
            break
        i += 1
        from repro.netsim.address import MacAddress

        mac = MacAddress((_suffix_to_int(nxt.suffix_after(O.DOT1D_TP_FDB_ADDRESS))))
        if mac not in macs:
            stale.append(nxt)
    for dead in stale:
        suffix = dead.suffix_after(O.DOT1D_TP_FDB_ADDRESS)
        store.remove(O.DOT1D_TP_FDB_ADDRESS + suffix)
        store.remove(O.DOT1D_TP_FDB_PORT + suffix)
        store.remove(O.DOT1D_TP_FDB_STATUS + suffix)
    _rebuild_fdb_rows(store, switch)


def _suffix_to_int(suffix: tuple[int, ...]) -> int:
    v = 0
    for b in suffix:
        v = (v << 8) | b
    return v
