"""Object identifiers.

OIDs are immutable int tuples with the SNMP lexicographic total order
(component-wise, shorter-is-smaller on prefix ties) that GETNEXT walks
rely on.  Standard MIB-II and Bridge-MIB subtree constants used by the
collectors live here too.
"""

from __future__ import annotations

from functools import total_ordering
from typing import Iterable, Iterator


@total_ordering
class Oid:
    """An SNMP object identifier, e.g. ``Oid("1.3.6.1.2.1.2.2.1.10.3")``."""

    __slots__ = ("_parts",)

    def __init__(self, parts: "str | Iterable[int] | Oid") -> None:
        if isinstance(parts, Oid):
            self._parts: tuple[int, ...] = parts._parts
        elif isinstance(parts, str):
            if not parts:
                self._parts = ()
            else:
                try:
                    self._parts = tuple(int(p) for p in parts.strip(".").split("."))
                except ValueError:
                    raise ValueError(f"bad OID string {parts!r}") from None
        else:
            self._parts = tuple(int(p) for p in parts)
        if any(p < 0 for p in self._parts):
            raise ValueError(f"OID components must be non-negative: {self._parts}")

    @property
    def parts(self) -> tuple[int, ...]:
        return self._parts

    def __add__(self, suffix: "str | Iterable[int] | int | Oid") -> "Oid":
        if isinstance(suffix, int):
            return Oid(self._parts + (suffix,))
        return Oid(self._parts + Oid(suffix)._parts)

    def starts_with(self, prefix: "Oid") -> bool:
        return self._parts[: len(prefix._parts)] == prefix._parts

    def suffix_after(self, prefix: "Oid") -> tuple[int, ...]:
        if not self.starts_with(prefix):
            raise ValueError(f"{self} does not start with {prefix}")
        return self._parts[len(prefix._parts):]

    def __len__(self) -> int:
        return len(self._parts)

    def __iter__(self) -> Iterator[int]:
        return iter(self._parts)

    def __str__(self) -> str:
        return ".".join(str(p) for p in self._parts)

    def __repr__(self) -> str:
        return f"Oid({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Oid):
            return self._parts == other._parts
        return NotImplemented

    def __lt__(self, other: "Oid") -> bool:
        if isinstance(other, Oid):
            return self._parts < other._parts
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._parts)


# -- MIB-II (RFC 1213) ---------------------------------------------------

MIB2 = Oid("1.3.6.1.2.1")

SYSTEM = MIB2 + "1"
SYS_DESCR = SYSTEM + "1.0"
SYS_OBJECT_ID = SYSTEM + "2.0"
SYS_NAME = SYSTEM + "5.0"

#: synthetic enterprises arc the simulated devices report as their
#: sysObjectID (1.3.6.1.4.1.<private>.<kind-code>)
SYS_OBJECT_ID_BASE = Oid("1.3.6.1.4.1.54321")

INTERFACES = MIB2 + "2"
IF_NUMBER = INTERFACES + "1.0"
IF_TABLE = INTERFACES + "2"
IF_ENTRY = IF_TABLE + "1"
IF_INDEX = IF_ENTRY + "1"
IF_DESCR = IF_ENTRY + "2"
IF_TYPE = IF_ENTRY + "3"
IF_SPEED = IF_ENTRY + "5"
IF_PHYS_ADDRESS = IF_ENTRY + "6"
IF_OPER_STATUS = IF_ENTRY + "8"
IF_IN_OCTETS = IF_ENTRY + "10"
IF_OUT_OCTETS = IF_ENTRY + "16"

IP = MIB2 + "4"
IP_FORWARDING = IP + "1.0"
IP_ROUTE_TABLE = IP + "21"
IP_ROUTE_ENTRY = IP_ROUTE_TABLE + "1"
IP_ROUTE_DEST = IP_ROUTE_ENTRY + "1"
IP_ROUTE_IF_INDEX = IP_ROUTE_ENTRY + "2"
IP_ROUTE_NEXT_HOP = IP_ROUTE_ENTRY + "7"
IP_ROUTE_TYPE = IP_ROUTE_ENTRY + "8"
IP_ROUTE_MASK = IP_ROUTE_ENTRY + "11"

#: ipRouteType values (RFC 1213)
ROUTE_TYPE_DIRECT = 3
ROUTE_TYPE_INDIRECT = 4

# ipCidrRouteTable (RFC 2096): indexed by (dest, mask, tos, next hop),
# so overlapping prefixes with one network address coexist — the
# classic ipRouteTable, indexed by destination alone, cannot hold both
# 10.0.0.0/8 and 10.0.0.0/16.
IP_FORWARD = IP + "24"
IP_CIDR_ROUTE_TABLE = IP_FORWARD + "4"
IP_CIDR_ROUTE_ENTRY = IP_CIDR_ROUTE_TABLE + "1"
IP_CIDR_ROUTE_IF_INDEX = IP_CIDR_ROUTE_ENTRY + "5"
IP_CIDR_ROUTE_TYPE = IP_CIDR_ROUTE_ENTRY + "6"

#: ipCidrRouteType values
CIDR_TYPE_LOCAL = 3
CIDR_TYPE_REMOTE = 4

IP_NET_TO_MEDIA_TABLE = IP + "22"
IP_NET_TO_MEDIA_ENTRY = IP_NET_TO_MEDIA_TABLE + "1"
IP_NET_TO_MEDIA_IF_INDEX = IP_NET_TO_MEDIA_ENTRY + "1"
IP_NET_TO_MEDIA_PHYS_ADDRESS = IP_NET_TO_MEDIA_ENTRY + "2"
IP_NET_TO_MEDIA_NET_ADDRESS = IP_NET_TO_MEDIA_ENTRY + "3"

# -- Bridge-MIB (RFC 1493) ------------------------------------------------

DOT1D_BRIDGE = MIB2 + "17"
DOT1D_BASE = DOT1D_BRIDGE + "1"
DOT1D_BASE_BRIDGE_ADDRESS = DOT1D_BASE + "1.0"
DOT1D_BASE_NUM_PORTS = DOT1D_BASE + "2.0"
DOT1D_TP = DOT1D_BRIDGE + "4"
DOT1D_TP_FDB_TABLE = DOT1D_TP + "3"
DOT1D_TP_FDB_ENTRY = DOT1D_TP_FDB_TABLE + "1"
DOT1D_TP_FDB_ADDRESS = DOT1D_TP_FDB_ENTRY + "1"
DOT1D_TP_FDB_PORT = DOT1D_TP_FDB_ENTRY + "2"
DOT1D_TP_FDB_STATUS = DOT1D_TP_FDB_ENTRY + "3"

#: dot1dTpFdbStatus values
FDB_STATUS_LEARNED = 3
FDB_STATUS_SELF = 4

# -- Host Resources MIB (RFC 2790) ----------------------------------------

HOST_RESOURCES = MIB2 + "25"
HR_SYSTEM_NUM_USERS = HOST_RESOURCES + "1.5.0"
HR_SYSTEM_PROCESSES = HOST_RESOURCES + "1.6.0"
HR_PROCESSOR_TABLE = HOST_RESOURCES + "3.3"
HR_PROCESSOR_ENTRY = HR_PROCESSOR_TABLE + "1"
HR_PROCESSOR_LOAD = HR_PROCESSOR_ENTRY + "2"

# -- wireless AP view (experimental subtree; mirrors IEEE 802.11 MIB
#    concepts: BSSID, operational rate, association table) ---------------

WLAN = Oid("1.3.6.1.3.11")
WLAN_BSSID = WLAN + "1.0"
WLAN_AIR_RATE = WLAN + "2.0"
WLAN_ASSOC_TABLE = WLAN + "3"
WLAN_ASSOC_ENTRY = WLAN_ASSOC_TABLE + "1"
WLAN_ASSOC_STATION = WLAN_ASSOC_ENTRY + "1"
