"""SNMP client with simulated request costs.

Every PDU exchanged charges simulated time to the engine via a
:class:`SnmpCostModel` — this is what gives the Fig. 3 scalability
curves their shape: a cold topology discovery costs thousands of PDUs,
a warm one costs a handful.  The client also counts PDUs so experiments
can report message complexity directly.

A client is bound to a source address (for agent ACLs) and an
:class:`~repro.snmp.agent.SnmpWorld` (for addressing).  ``walk`` is the
standard GETNEXT loop bounded to one subtree; ``bulk_walk`` covers the
same subtree with GetBulk PDUs, charging one round-trip per
``max_repetitions`` varbinds instead of one per varbind — the batching
that makes cold table walks cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.common.errors import AgentUnreachableError, NoSuchObjectError
from repro.netsim.address import IPv4Address
from repro.snmp import oid as O
from repro.snmp.agent import SnmpWorld
from repro.snmp.oid import Oid


@dataclass
class SnmpCostModel:
    """Simulated time charged per SNMP exchange.

    ``rtt_s`` covers network round trip + agent dispatch; each varbind
    adds ``per_varbind_s`` of marshalling/processing.  A request to a
    dead agent costs ``timeout_s`` (one retry is implied in the figure).
    The defaults approximate a busy campus LAN and reproduce the
    paper's cold-cache query times within an order of magnitude.

    ``retries`` > 0 arms a deadline/retry policy: a timed-out request
    is retried up to that many times with exponential backoff
    (``backoff_base_s * backoff_mult**k`` before attempt k+1), every
    wait charged on the simulation clock.  The default 0 preserves the
    historical fail-fast behaviour exactly.
    """

    rtt_s: float = 0.002
    per_varbind_s: float = 0.0002
    timeout_s: float = 2.0
    #: varbinds requested per GetBulk PDU (bulk-walk batch size)
    bulk_max_repetitions: int = 32
    #: retry budget after a timeout (0 = fail on the first timeout)
    retries: int = 0
    backoff_base_s: float = 0.5
    backoff_mult: float = 2.0


class SnmpClient:
    """GET/GETNEXT/WALK against agents in one :class:`SnmpWorld`."""

    def __init__(
        self,
        world: SnmpWorld,
        source_ip: IPv4Address | str,
        community: str = "public",
        cost: SnmpCostModel | None = None,
    ) -> None:
        self.world = world
        self.source_ip = IPv4Address(source_ip)
        self.community = community
        self.cost = cost or SnmpCostModel()
        #: PDUs sent (diagnostics / message-complexity reporting)
        self.pdu_count = 0
        #: timeouts observed
        self.timeout_count = 0
        #: retries spent after timeouts
        self.retry_count = 0

    # -- internals -------------------------------------------------------

    def _injector(self):
        return getattr(self.world.net, "faults", None)

    def _charge(self, n_varbinds: int, op: str, ip=None) -> None:
        self.pdu_count += 1
        obs.counter("snmp.client.pdus", op=op).inc()
        dt = self.cost.rtt_s + n_varbinds * self.cost.per_varbind_s
        if ip is not None:
            inj = self._injector()
            if inj is not None:
                dt += inj.pdu_delay_s(ip)
        # a leaf span per PDU exchange ties the transport cost into the
        # query's causal trace (sim-clock interval == the charge)
        with obs.span("snmp.client.pdu", op=op):
            self.world.net.engine.advance(dt)

    def _timeout(self, op: str) -> None:
        self.pdu_count += 1
        self.timeout_count += 1
        obs.counter("snmp.client.pdus", op=op).inc()
        obs.counter("snmp.client.timeouts").inc()
        with obs.span("snmp.client.timeout", op=op):
            self.world.net.engine.advance(self.cost.timeout_s)

    def _attempt(self, ip: IPv4Address | str, op: str):
        """One request attempt: the agent, or an unreachable timeout."""
        agent = self.world.agent_at(ip)
        if agent is None:
            self._timeout(op)
            raise AgentUnreachableError(f"no agent at {ip} (timeout)")
        inj = self._injector()
        if inj is not None and inj.drop_pdu(ip):
            self._timeout(op)
            raise AgentUnreachableError(f"{ip}: request dropped (timeout)")
        try:
            agent.authorize(self.source_ip, self.community)
        except AgentUnreachableError:
            self._timeout(op)
            raise
        return agent

    def _agent(self, ip: IPv4Address | str, op: str):
        """The agent behind ``ip``, retrying timeouts per the cost model.

        Each retry waits an exponentially growing backoff on the sim
        clock before re-sending.  Authorization refusals are explicit
        answers, not timeouts, so they never retry.
        """
        backoff = self.cost.backoff_base_s
        for attempt in range(self.cost.retries + 1):
            if attempt > 0:
                self.retry_count += 1
                obs.counter("snmp.retries", op=op).inc()
                with obs.span("snmp.client.retry", op=op):
                    self.world.net.engine.advance(backoff)
                backoff *= self.cost.backoff_mult
            try:
                return self._attempt(ip, op)
            except AgentUnreachableError:
                if attempt == self.cost.retries:
                    raise
        raise AgentUnreachableError(f"no agent at {ip} (timeout)")

    def _counter_value(self, ip, oid: Oid, value: object) -> object:
        """Pass octet-counter readings through the fault injector."""
        inj = self._injector()
        if inj is None:
            return value
        if not (oid.starts_with(O.IF_IN_OCTETS) or oid.starts_with(O.IF_OUT_OCTETS)):
            return value
        return inj.counter_read(ip, oid, float(value))

    # -- operations ---------------------------------------------------------

    def get(self, ip: IPv4Address | str, oid: Oid | str) -> object:
        """GET a single object."""
        agent = self._agent(ip, "get")
        self._charge(1, "get", ip)
        oid = Oid(oid)
        return self._counter_value(ip, oid, agent.get(oid))

    def get_many(self, ip: IPv4Address | str, oids: list[Oid]) -> list[object]:
        """GET several objects in one PDU (missing OIDs raise)."""
        agent = self._agent(ip, "get")
        self._charge(len(oids), "get", ip)
        return [
            self._counter_value(ip, Oid(o), agent.get(Oid(o))) for o in oids
        ]

    def get_next(self, ip: IPv4Address | str, oid: Oid | str) -> tuple[Oid, object]:
        """GETNEXT: the lexicographically next object."""
        agent = self._agent(ip, "getnext")
        self._charge(1, "getnext", ip)
        return agent.get_next(Oid(oid))

    def walk(self, ip: IPv4Address | str, prefix: Oid | str) -> list[tuple[Oid, object]]:
        """All objects under ``prefix`` via repeated GETNEXT."""
        prefix = Oid(prefix)
        agent = self._agent(ip, "getnext")
        results: list[tuple[Oid, object]] = []
        current = prefix
        while True:
            self._charge(1, "getnext", ip)
            try:
                nxt, value = agent.get_next(current)
            except NoSuchObjectError:
                break
            if not nxt.starts_with(prefix):
                break
            results.append((nxt, value))
            current = nxt
        obs.histogram("snmp.client.walk_len").observe(len(results))
        return results

    def get_bulk(
        self,
        ip: IPv4Address | str,
        oid: Oid | str,
        max_repetitions: int | None = None,
    ) -> list[tuple[Oid, object]]:
        """GetBulk: up to ``max_repetitions`` GETNEXT results, one PDU."""
        n = max_repetitions or self.cost.bulk_max_repetitions
        agent = self._agent(ip, "getbulk")
        chunk = agent.get_bulk(Oid(oid), n)
        # a PDU goes out (and the agent answers) even when empty
        self._charge(max(1, len(chunk)), "getbulk", ip)
        obs.counter("snmp.bulk_varbinds").inc(len(chunk))
        return chunk

    def bulk_walk(
        self,
        ip: IPv4Address | str,
        prefix: Oid | str,
        max_repetitions: int | None = None,
    ) -> list[tuple[Oid, object]]:
        """All objects under ``prefix`` via GetBulk PDUs.

        Returns exactly what :meth:`walk` returns for the same subtree,
        at roughly ``1/max_repetitions`` of the PDU (and round-trip)
        cost.
        """
        prefix = Oid(prefix)
        n = max_repetitions or self.cost.bulk_max_repetitions
        results: list[tuple[Oid, object]] = []
        current: Oid = prefix
        while True:
            chunk = self.get_bulk(ip, current, n)
            for nxt, value in chunk:
                if not nxt.starts_with(prefix):
                    break
                results.append((nxt, value))
            else:
                if len(chunk) == n:
                    current = chunk[-1][0]
                    continue
            break  # left the subtree, or the agent hit end of MIB
        obs.histogram("snmp.client.bulk_walk_len").observe(len(results))
        return results

    def table_column(
        self, ip: IPv4Address | str, column: Oid | str
    ) -> dict[tuple[int, ...], object]:
        """A table column as {row-index-suffix: value} (bulk-walked)."""
        column = Oid(column)
        return {
            oid.suffix_after(column): value
            for oid, value in self.bulk_walk(ip, column)
        }
