"""SNMP client with simulated request costs.

Every PDU exchanged charges simulated time to the engine via a
:class:`SnmpCostModel` — this is what gives the Fig. 3 scalability
curves their shape: a cold topology discovery costs thousands of PDUs,
a warm one costs a handful.  The client also counts PDUs so experiments
can report message complexity directly.

A client is bound to a source address (for agent ACLs) and an
:class:`~repro.snmp.agent.SnmpWorld` (for addressing).  ``walk`` is the
standard GETNEXT loop bounded to one subtree; ``bulk_walk`` covers the
same subtree with GetBulk PDUs, charging one round-trip per
``max_repetitions`` varbinds instead of one per varbind — the batching
that makes cold table walks cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.common.errors import AgentUnreachableError, NoSuchObjectError
from repro.netsim.address import IPv4Address
from repro.snmp.agent import SnmpWorld
from repro.snmp.oid import Oid


@dataclass
class SnmpCostModel:
    """Simulated time charged per SNMP exchange.

    ``rtt_s`` covers network round trip + agent dispatch; each varbind
    adds ``per_varbind_s`` of marshalling/processing.  A request to a
    dead agent costs ``timeout_s`` (one retry is implied in the figure).
    The defaults approximate a busy campus LAN and reproduce the
    paper's cold-cache query times within an order of magnitude.
    """

    rtt_s: float = 0.002
    per_varbind_s: float = 0.0002
    timeout_s: float = 2.0
    #: varbinds requested per GetBulk PDU (bulk-walk batch size)
    bulk_max_repetitions: int = 32


class SnmpClient:
    """GET/GETNEXT/WALK against agents in one :class:`SnmpWorld`."""

    def __init__(
        self,
        world: SnmpWorld,
        source_ip: IPv4Address | str,
        community: str = "public",
        cost: SnmpCostModel | None = None,
    ) -> None:
        self.world = world
        self.source_ip = IPv4Address(source_ip)
        self.community = community
        self.cost = cost or SnmpCostModel()
        #: PDUs sent (diagnostics / message-complexity reporting)
        self.pdu_count = 0
        #: timeouts observed
        self.timeout_count = 0

    # -- internals -------------------------------------------------------

    def _charge(self, n_varbinds: int, op: str) -> None:
        self.pdu_count += 1
        obs.counter("snmp.client.pdus", op=op).inc()
        self.world.net.engine.advance(
            self.cost.rtt_s + n_varbinds * self.cost.per_varbind_s
        )

    def _timeout(self, op: str) -> None:
        self.pdu_count += 1
        self.timeout_count += 1
        obs.counter("snmp.client.pdus", op=op).inc()
        obs.counter("snmp.client.timeouts").inc()
        self.world.net.engine.advance(self.cost.timeout_s)

    def _agent(self, ip: IPv4Address | str, op: str):
        agent = self.world.agent_at(ip)
        if agent is None:
            self._timeout(op)
            raise AgentUnreachableError(f"no agent at {ip} (timeout)")
        try:
            agent.authorize(self.source_ip, self.community)
        except AgentUnreachableError:
            self._timeout(op)
            raise
        return agent

    # -- operations ---------------------------------------------------------

    def get(self, ip: IPv4Address | str, oid: Oid | str) -> object:
        """GET a single object."""
        agent = self._agent(ip, "get")
        self._charge(1, "get")
        return agent.get(Oid(oid))

    def get_many(self, ip: IPv4Address | str, oids: list[Oid]) -> list[object]:
        """GET several objects in one PDU (missing OIDs raise)."""
        agent = self._agent(ip, "get")
        self._charge(len(oids), "get")
        return [agent.get(Oid(o)) for o in oids]

    def get_next(self, ip: IPv4Address | str, oid: Oid | str) -> tuple[Oid, object]:
        """GETNEXT: the lexicographically next object."""
        agent = self._agent(ip, "getnext")
        self._charge(1, "getnext")
        return agent.get_next(Oid(oid))

    def walk(self, ip: IPv4Address | str, prefix: Oid | str) -> list[tuple[Oid, object]]:
        """All objects under ``prefix`` via repeated GETNEXT."""
        prefix = Oid(prefix)
        agent = self._agent(ip, "getnext")
        results: list[tuple[Oid, object]] = []
        current = prefix
        while True:
            self._charge(1, "getnext")
            try:
                nxt, value = agent.get_next(current)
            except NoSuchObjectError:
                break
            if not nxt.starts_with(prefix):
                break
            results.append((nxt, value))
            current = nxt
        obs.histogram("snmp.client.walk_len").observe(len(results))
        return results

    def get_bulk(
        self,
        ip: IPv4Address | str,
        oid: Oid | str,
        max_repetitions: int | None = None,
    ) -> list[tuple[Oid, object]]:
        """GetBulk: up to ``max_repetitions`` GETNEXT results, one PDU."""
        n = max_repetitions or self.cost.bulk_max_repetitions
        agent = self._agent(ip, "getbulk")
        chunk = agent.get_bulk(Oid(oid), n)
        # a PDU goes out (and the agent answers) even when empty
        self._charge(max(1, len(chunk)), "getbulk")
        obs.counter("snmp.bulk_varbinds").inc(len(chunk))
        return chunk

    def bulk_walk(
        self,
        ip: IPv4Address | str,
        prefix: Oid | str,
        max_repetitions: int | None = None,
    ) -> list[tuple[Oid, object]]:
        """All objects under ``prefix`` via GetBulk PDUs.

        Returns exactly what :meth:`walk` returns for the same subtree,
        at roughly ``1/max_repetitions`` of the PDU (and round-trip)
        cost.
        """
        prefix = Oid(prefix)
        n = max_repetitions or self.cost.bulk_max_repetitions
        results: list[tuple[Oid, object]] = []
        current: Oid = prefix
        while True:
            chunk = self.get_bulk(ip, current, n)
            for nxt, value in chunk:
                if not nxt.starts_with(prefix):
                    break
                results.append((nxt, value))
            else:
                if len(chunk) == n:
                    current = chunk[-1][0]
                    continue
            break  # left the subtree, or the agent hit end of MIB
        obs.histogram("snmp.client.bulk_walk_len").observe(len(results))
        return results

    def table_column(
        self, ip: IPv4Address | str, column: Oid | str
    ) -> dict[tuple[int, ...], object]:
        """A table column as {row-index-suffix: value} (bulk-walked)."""
        column = Oid(column)
        return {
            oid.suffix_after(column): value
            for oid, value in self.bulk_walk(ip, column)
        }
