"""A from-scratch mini-SNMP over the simulated network.

OIDs with the standard total order, MIB-II / Bridge-MIB views over
simulated devices (live counters read through to the fluid-flow state),
agents with community and source-ACL checks, and a client that charges
simulated round-trip time per PDU.
"""

from repro.snmp.oid import Oid
from repro.snmp.mib import MibStore, build_router_mib, build_switch_mib, refresh_switch_fdb
from repro.snmp.agent import SnmpAgent, SnmpWorld, instrument_network
from repro.snmp.client import SnmpClient, SnmpCostModel

__all__ = [
    "Oid",
    "MibStore",
    "build_router_mib",
    "build_switch_mib",
    "refresh_switch_fdb",
    "SnmpAgent",
    "SnmpWorld",
    "instrument_network",
    "SnmpClient",
    "SnmpCostModel",
]
