"""SNMP agents and the per-world agent registry.

An :class:`SnmpAgent` fronts one device's :class:`~repro.snmp.mib.MibStore`
with the two access-control mechanisms the paper's collectors must cope
with: a community string (wrong community = silent drop = timeout) and a
source-address ACL ("SNMP agents are normally only accessible from local
IP addresses" — §3.1.1).  Devices can also be marked plainly
unreachable, modelling the misconfigured or non-standard agents §6.2
complains about.

:class:`SnmpWorld` maps every management/interface IP to its agent —
the "DNS + UDP reachability" a collector implicitly uses when it sends
a PDU to an address it learned from a routing table.

``instrument_network`` builds MIBs for every router and switch of a
simulated network and registers them, returning the world.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.common.errors import (
    AgentUnreachableError,
    AuthorizationError,
    NoSuchObjectError,
)
from repro.netsim.address import IPv4Address, IPv4Network
from repro.netsim.topology import Network, Node, Router, Switch
from repro.snmp.mib import (
    MibStore,
    build_basestation_mib,
    build_router_mib,
    build_switch_mib,
)
from repro.snmp.oid import Oid


@dataclass
class SnmpAgent:
    """One device's SNMP personality."""

    device: Node
    mib: MibStore
    community: str = "public"
    #: source prefixes allowed to query; empty list = allow everyone
    allowed_sources: list[IPv4Network] = field(default_factory=list)
    #: hard off-switch (agent not running / device filtered)
    reachable: bool = True
    #: MIB objects this agent served (diagnostics / per-agent load)
    requests_served: int = 0

    def authorize(self, source: IPv4Address, community: str) -> None:
        """Raise unless this (source, community) pair may query.

        Wrong community behaves like a dead agent (SNMP drops silently,
        the querier times out); a disallowed source address gets an
        explicit refusal.
        """
        if not self.reachable or not getattr(self.device, "snmp_reachable", True):
            obs.counter("snmp.agent.dropped", reason="down").inc()
            raise AgentUnreachableError(f"{self.device.name}: agent down")
        if community != self.community:
            obs.counter("snmp.agent.dropped", reason="community").inc()
            raise AgentUnreachableError(
                f"{self.device.name}: bad community (request dropped)"
            )
        if self.allowed_sources and not any(
            source in n for n in self.allowed_sources
        ):
            obs.counter("snmp.agent.dropped", reason="acl").inc()
            raise AuthorizationError(
                f"{self.device.name}: source {source} not permitted"
            )

    def get(self, oid: Oid) -> object:
        self.requests_served += 1
        obs.counter("snmp.agent.requests", device=self.device.name).inc()
        return self.mib.get(oid)

    def get_next(self, oid: Oid) -> tuple[Oid, object]:
        self.requests_served += 1
        obs.counter("snmp.agent.requests", device=self.device.name).inc()
        return self.mib.get_next(oid)

    def get_bulk(self, oid: Oid, max_repetitions: int) -> list[tuple[Oid, object]]:
        """GetBulk: up to ``max_repetitions`` successive GETNEXT results
        in one exchange, stopping early at the end of the MIB."""
        out: list[tuple[Oid, object]] = []
        current = oid
        for _ in range(max_repetitions):
            try:
                current, value = self.mib.get_next(current)
            except NoSuchObjectError:
                break
            out.append((current, value))
        self.requests_served += len(out)
        obs.counter("snmp.agent.requests", device=self.device.name).inc(len(out))
        return out


class SnmpWorld:
    """Registry of agents by IP address within one simulated network."""

    def __init__(self, net: Network) -> None:
        self.net = net
        self._by_ip: dict[IPv4Address, SnmpAgent] = {}
        self._by_device: dict[str, SnmpAgent] = {}

    def register(self, agent: SnmpAgent, ips: list[IPv4Address]) -> None:
        for ip in ips:
            self._by_ip[IPv4Address(ip)] = agent
        self._by_device[agent.device.name] = agent

    def agent_at(self, ip: IPv4Address | str) -> SnmpAgent | None:
        return self._by_ip.get(IPv4Address(ip))

    def agent_for(self, device_name: str) -> SnmpAgent | None:
        return self._by_device.get(device_name)

    def agents(self) -> list[SnmpAgent]:
        return list(self._by_device.values())

    def refresh_device(self, device: Node) -> None:
        """Rebuild a device's MIB after a topology change (new ports,
        moved stations).  Keeps the agent object — and therefore its
        community/ACL settings — intact."""
        agent = self._by_device.get(device.name)
        if agent is None:
            return
        from repro.netsim.wireless import Basestation

        if isinstance(device, Router):
            agent.mib = build_router_mib(device, self.net)
        elif isinstance(device, Basestation):
            agent.mib = build_basestation_mib(device, self.net)
        elif isinstance(device, Switch):
            agent.mib = build_switch_mib(device, self.net)


def instrument_network(
    net: Network,
    community: str = "public",
    allowed_sources: list[IPv4Network] | None = None,
) -> SnmpWorld:
    """Give every router and managed switch an SNMP agent.

    Routers answer on all their interface addresses; switches answer on
    their management address.  Devices whose ``snmp_reachable`` flag is
    False get an agent marked down (they exist, but won't answer —
    the collector will represent them as virtual switches).
    """
    world = SnmpWorld(net)
    acl = list(allowed_sources or [])
    for router in net.routers():
        agent = SnmpAgent(
            router,
            build_router_mib(router, net),
            community=community,
            allowed_sources=acl,
            reachable=router.snmp_reachable,
        )
        world.register(agent, [i.ip for i in router.interfaces if i.ip is not None])
    for switch in net.switches():
        if switch.management_ip is None:
            continue
        agent = SnmpAgent(
            switch,
            build_switch_mib(switch, net),
            community=community,
            allowed_sources=acl,
            reachable=switch.snmp_reachable,
        )
        world.register(agent, [switch.management_ip])
    # basestations: wireless APs answering on their management address
    from repro.netsim.wireless import Basestation

    for node in net.nodes.values():
        if isinstance(node, Basestation) and node.management_ip is not None:
            agent = SnmpAgent(
                node,
                build_basestation_mib(node, net),
                community=community,
                allowed_sources=acl,
                reachable=node.snmp_reachable,
            )
            world.register(agent, [node.management_ip])
    return world


def instrument_hosts(
    world: SnmpWorld,
    hosts=None,
    community: str = "public",
    allowed_sources: list[IPv4Network] | None = None,
) -> int:
    """Give end hosts SNMP agents with the Host Resources MIB.

    Most sites don't run SNMP on workstations, so this is opt-in and
    separate from :func:`instrument_network`.  Returns how many agents
    were registered.
    """
    from repro.netsim.topology import Host
    from repro.snmp.mib import build_host_mib

    net = world.net
    targets = list(hosts) if hosts is not None else net.hosts()
    acl = list(allowed_sources or [])
    count = 0
    for host in targets:
        if not isinstance(host, Host):
            continue
        ips = [i.ip for i in host.interfaces if i.ip is not None]
        if not ips:
            continue
        agent = SnmpAgent(
            host,
            build_host_mib(host, net),
            community=community,
            allowed_sources=acl,
        )
        world.register(agent, ips)
        count += 1
    return count
