"""Host instrumentation: load sources and sampling helpers.

RPS collects host load through its own sensor (paper §3.3: "RPS does
this through a host load sensor"), so hosts expose a ``load(now)``
callable rather than a MIB entry.  This module wires synthetic load
traces onto hosts and provides a small recorder used by tests and the
prediction experiments.
"""

from __future__ import annotations


import numpy as np

from repro.netsim.topology import Host, Network


class TraceLoadSource:
    """Piecewise-constant load from a pre-generated trace.

    ``trace[k]`` is the load during ``[k*dt, (k+1)*dt)``; beyond the
    trace end the series wraps around, so long simulations stay defined.
    """

    def __init__(self, trace: np.ndarray, dt: float = 1.0, t0: float = 0.0) -> None:
        trace = np.asarray(trace, dtype=float)
        if trace.ndim != 1 or trace.size == 0:
            raise ValueError("trace must be a non-empty 1-D array")
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.trace = trace
        self.dt = dt
        self.t0 = t0

    def __call__(self, now: float) -> float:
        k = int((now - self.t0) / self.dt) % self.trace.size
        return float(self.trace[k])


def attach_trace(host: Host, trace: np.ndarray, dt: float = 1.0) -> TraceLoadSource:
    """Attach a trace-backed load source and return it."""
    src = TraceLoadSource(trace, dt)
    host.load_source = src
    return src


class LoadRecorder:
    """Samples a host's load periodically into ``times`` / ``values``."""

    def __init__(self, net: Network, host: Host, interval_s: float) -> None:
        self.net = net
        self.host = host
        self.interval_s = interval_s
        self.times: list[float] = []
        self.values: list[float] = []
        self._timer = None

    def start(self) -> None:
        if self._timer is None:
            self._timer = self.net.engine.every(self.interval_s, self._sample)

    def _sample(self) -> None:
        self.times.append(self.net.now)
        self.values.append(self.host.load(self.net.now))

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def as_array(self) -> np.ndarray:
        return np.asarray(self.values, dtype=float)
