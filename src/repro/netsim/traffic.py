"""Traffic generators.

Each generator drives flows on a :class:`~repro.netsim.topology.Network`
through its engine:

* :class:`CbrTraffic` — constant bit-rate flow (demand-capped fluid).
* :class:`BurstTraffic` — Netperf-style greedy TCP bursts with idle
  gaps; used for the SNMP-accuracy experiments (paper Figs. 4–5).
* :class:`RandomWalkTraffic` — demand follows a clipped random walk,
  re-drawn every ``step_s``; the background cross-traffic that gives
  WAN paths their per-site mean/σ bandwidth character (Table 1).
* :class:`ParetoOnOffTraffic` — heavy-tailed on/off source, the classic
  self-similar LAN background model.
* :class:`FileTransfer` — a finite transfer reporting completion time
  and achieved throughput (mirror experiment workload).

Generators are started with ``.start()`` and stopped with ``.stop()``;
all scheduling happens on the network's engine, so a single
``engine.run_until(t)`` drives everything.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.common.rng import make_rng
from repro.netsim.flows import Flow
from repro.netsim.topology import Host, Network


class CbrTraffic:
    """A constant-bit-rate flow between two hosts."""

    def __init__(
        self,
        net: Network,
        src: Host | str,
        dst: Host | str,
        rate_bps: float,
        label: str = "cbr",
    ) -> None:
        self.net = net
        self.src = src
        self.dst = dst
        self.rate_bps = rate_bps
        self.label = label
        self.flow: Flow | None = None

    def start(self) -> None:
        if self.flow is None:
            self.flow = self.net.flows.start_flow(
                self.src, self.dst, demand_bps=self.rate_bps, label=self.label
            )

    def stop(self) -> None:
        if self.flow is not None:
            self.net.flows.stop_flow(self.flow)
            self.flow = None

    def current_rate(self) -> float:
        return self.flow.rate_bps if self.flow is not None else 0.0


class BurstTraffic:
    """Greedy bursts with gaps, like repeated Netperf runs.

    ``schedule`` is a list of ``(start, duration)`` pairs in seconds.
    During a burst the flow is greedy (infinite demand) so it takes
    whatever max-min share the path allows — exactly how a TCP bulk
    transfer behaves in the fluid model.
    """

    def __init__(
        self,
        net: Network,
        src: Host | str,
        dst: Host | str,
        schedule: list[tuple[float, float]],
        demand_bps: float = math.inf,
        label: str = "burst",
    ) -> None:
        self.net = net
        self.src = src
        self.dst = dst
        self.schedule = sorted(schedule)
        self.demand_bps = demand_bps
        self.label = label
        self.flow: Flow | None = None
        self._started = False

    def start(self) -> None:
        """Arm all bursts on the engine (idempotent)."""
        if self._started:
            return
        self._started = True
        eng = self.net.engine
        for i, (t0, dur) in enumerate(self.schedule):
            eng.at(max(t0, eng.now), lambda i=i: self._burst_on(i))
            eng.at(max(t0 + dur, eng.now), lambda: self._burst_off())

    def _burst_on(self, i: int) -> None:
        if self.flow is None:
            self.flow = self.net.flows.start_flow(
                self.src,
                self.dst,
                demand_bps=self.demand_bps,
                label=f"{self.label}[{i}]",
            )

    def _burst_off(self) -> None:
        if self.flow is not None:
            self.net.flows.stop_flow(self.flow)
            self.flow = None

    def stop(self) -> None:
        self._burst_off()

    def current_rate(self) -> float:
        return self.flow.rate_bps if self.flow is not None else 0.0


class RandomWalkTraffic:
    """Cross traffic whose demand performs a clipped random walk.

    Every ``step_s`` the demand moves by a Gaussian step (σ =
    ``sigma_bps``) and is clipped to ``[lo_bps, hi_bps]``.  Long-run
    demand is roughly uniform over the clip range, giving paths through
    the shared link a fluctuating available bandwidth with a stable
    mean — what the mirror/video site experiments need.
    """

    def __init__(
        self,
        net: Network,
        src: Host | str,
        dst: Host | str,
        lo_bps: float,
        hi_bps: float,
        sigma_bps: float,
        step_s: float = 1.0,
        seed: int | None = None,
        label: str = "xtraffic",
    ) -> None:
        if not 0 <= lo_bps <= hi_bps:
            raise ValueError("need 0 <= lo_bps <= hi_bps")
        self.net = net
        self.src = src
        self.dst = dst
        self.lo = lo_bps
        self.hi = hi_bps
        self.sigma = sigma_bps
        self.step_s = step_s
        self.rng = make_rng(seed)
        self.label = label
        self.flow: Flow | None = None
        self._timer = None
        self.demand = (lo_bps + hi_bps) / 2.0

    def start(self) -> None:
        if self.flow is not None:
            return
        self.flow = self.net.flows.start_flow(
            self.src, self.dst, demand_bps=self.demand, label=self.label
        )
        self._timer = self.net.engine.every(self.step_s, self._step)

    def _step(self) -> None:
        if self.flow is None:
            return
        self.demand = float(
            min(self.hi, max(self.lo, self.demand + self.rng.normal(0.0, self.sigma)))
        )
        self.net.flows.set_demand(self.flow, self.demand)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if self.flow is not None:
            self.net.flows.stop_flow(self.flow)
            self.flow = None


class ParetoOnOffTraffic:
    """Heavy-tailed on/off source (self-similar aggregate traffic).

    On and off durations are Pareto(shape α, scale m); during an on
    period the source sends at ``rate_bps``.  Aggregating many of these
    produces long-range-dependent link utilization (Willinger et al.),
    which is what makes 5-second SNMP polls jitter realistically.
    """

    def __init__(
        self,
        net: Network,
        src: Host | str,
        dst: Host | str,
        rate_bps: float,
        shape: float = 1.5,
        mean_on_s: float = 2.0,
        mean_off_s: float = 2.0,
        seed: int | None = None,
        label: str = "pareto",
    ) -> None:
        if shape <= 1.0:
            raise ValueError("shape must exceed 1 for a finite mean")
        self.net = net
        self.src = src
        self.dst = dst
        self.rate_bps = rate_bps
        self.shape = shape
        # Pareto mean = scale * shape / (shape - 1)  =>  scale from mean
        self.scale_on = mean_on_s * (shape - 1.0) / shape
        self.scale_off = mean_off_s * (shape - 1.0) / shape
        self.rng = make_rng(seed)
        self.label = label
        self.flow: Flow | None = None
        self._running = False

    def _pareto(self, scale: float) -> float:
        # Inverse CDF: scale * U^(-1/shape)
        u = self.rng.random()
        return scale * (1.0 - u) ** (-1.0 / self.shape)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._go_on()

    def _go_on(self) -> None:
        if not self._running:
            return
        self.flow = self.net.flows.start_flow(
            self.src, self.dst, demand_bps=self.rate_bps, label=self.label
        )
        self.net.engine.after(self._pareto(self.scale_on), self._go_off)

    def _go_off(self) -> None:
        if self.flow is not None:
            self.net.flows.stop_flow(self.flow)
            self.flow = None
        if self._running:
            self.net.engine.after(self._pareto(self.scale_off), self._go_on)

    def stop(self) -> None:
        self._running = False
        if self.flow is not None:
            self.net.flows.stop_flow(self.flow)
            self.flow = None


class FileTransfer:
    """A finite greedy transfer that records its completion statistics."""

    def __init__(
        self,
        net: Network,
        src: Host | str,
        dst: Host | str,
        nbytes: float,
        on_done: Callable[["FileTransfer"], None] | None = None,
        label: str = "xfer",
    ) -> None:
        self.net = net
        self.src = src
        self.dst = dst
        self.nbytes = nbytes
        self.on_done = on_done
        self.label = label
        self.flow: Flow | None = None
        self.started_at: float | None = None
        self.finished_at: float | None = None

    def start(self) -> None:
        if self.flow is not None:
            return
        self.started_at = self.net.now
        self.flow = self.net.flows.start_flow(
            self.src,
            self.dst,
            total_bytes=self.nbytes,
            on_complete=self._done,
            label=self.label,
        )

    def _done(self, flow: Flow) -> None:
        self.finished_at = self.net.now
        if self.on_done is not None:
            self.on_done(self)

    @property
    def complete(self) -> bool:
        return self.finished_at is not None

    @property
    def elapsed_s(self) -> float:
        """Transfer duration; inf until complete."""
        if self.started_at is None or self.finished_at is None:
            return math.inf
        return self.finished_at - self.started_at

    @property
    def throughput_bps(self) -> float:
        """Achieved end-to-end throughput; 0 until complete."""
        el = self.elapsed_s
        if not math.isfinite(el) or el <= 0:
            return 0.0
        return self.nbytes * 8.0 / el
