"""Minimal IPv4 addressing.

A from-scratch, integer-backed IPv4 implementation: enough for routing
table longest-prefix match, SNMP OID suffix encoding, and the network
partitioning the Master Collector performs.  (We do not use the stdlib
``ipaddress`` module: these objects are created in bulk during topology
construction and route discovery, and need to be cheap, hashable, and
directly convertible to OID index tuples.)
"""

from __future__ import annotations

from functools import total_ordering


def _parse_dotted(s: str) -> int:
    parts = s.split(".")
    if len(parts) != 4:
        raise ValueError(f"bad IPv4 address {s!r}")
    value = 0
    for p in parts:
        b = int(p)
        if not 0 <= b <= 255:
            raise ValueError(f"bad IPv4 octet {p!r} in {s!r}")
        value = (value << 8) | b
    return value


@total_ordering
class IPv4Address:
    """An IPv4 address backed by a single int.

    Supports ordering, hashing, string round-trips, and conversion to
    the 4-int tuple SNMP uses to index table rows by address.  The
    dotted-quad form is memoised: collectors stringify addresses on
    every cache lookup, millions of times per large query.
    """

    __slots__ = ("_value", "_str")

    def __init__(self, addr: "int | str | IPv4Address") -> None:
        self._str: str | None = None
        if isinstance(addr, IPv4Address):
            self._value = addr._value
            self._str = addr._str
        elif isinstance(addr, int):
            if not 0 <= addr <= 0xFFFFFFFF:
                raise ValueError(f"IPv4 int out of range: {addr}")
            self._value = addr
        elif isinstance(addr, str):
            # not memoised from input: "010.1.2.3" parses but is not canonical
            self._value = _parse_dotted(addr)
        else:
            raise TypeError(f"cannot make IPv4Address from {type(addr).__name__}")

    @property
    def value(self) -> int:
        return self._value

    def octets(self) -> tuple[int, int, int, int]:
        """The four octets, most significant first (the SNMP row index)."""
        v = self._value
        return ((v >> 24) & 0xFF, (v >> 16) & 0xFF, (v >> 8) & 0xFF, v & 0xFF)

    def __str__(self) -> str:
        if self._str is None:
            self._str = ".".join(str(o) for o in self.octets())
        return self._str

    def __repr__(self) -> str:
        return f"IPv4Address({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Address):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "IPv4Address") -> bool:
        if isinstance(other, IPv4Address):
            return self._value < other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._value)

    def __int__(self) -> int:
        return self._value


@total_ordering
class IPv4Network:
    """A CIDR prefix, e.g. ``IPv4Network("10.1.2.0/24")``.

    Ordering sorts by (network address, prefix length) so more-specific
    prefixes with the same base sort after shorter ones.
    """

    __slots__ = ("_net", "_prefixlen")

    def __init__(self, spec: "str | IPv4Network", prefixlen: int | None = None) -> None:
        if isinstance(spec, IPv4Network):
            self._net, self._prefixlen = spec._net, spec._prefixlen
            return
        if prefixlen is None:
            if "/" not in spec:
                raise ValueError(f"network needs a /prefixlen: {spec!r}")
            addr_s, plen_s = spec.split("/", 1)
            prefixlen = int(plen_s)
        else:
            addr_s = spec
        if not 0 <= prefixlen <= 32:
            raise ValueError(f"bad prefix length {prefixlen}")
        base = _parse_dotted(addr_s)
        mask = self._mask_for(prefixlen)
        if base & ~mask & 0xFFFFFFFF:
            raise ValueError(f"{addr_s}/{prefixlen} has host bits set")
        self._net = base
        self._prefixlen = prefixlen

    @staticmethod
    def _mask_for(prefixlen: int) -> int:
        return (0xFFFFFFFF << (32 - prefixlen)) & 0xFFFFFFFF if prefixlen else 0

    @property
    def network_address(self) -> IPv4Address:
        return IPv4Address(self._net)

    @property
    def prefixlen(self) -> int:
        return self._prefixlen

    @property
    def netmask(self) -> IPv4Address:
        return IPv4Address(self._mask_for(self._prefixlen))

    @property
    def num_addresses(self) -> int:
        return 1 << (32 - self._prefixlen)

    def __contains__(self, addr: IPv4Address) -> bool:
        if not isinstance(addr, IPv4Address):
            return False
        return (addr.value & self._mask_for(self._prefixlen)) == self._net

    def host(self, index: int) -> IPv4Address:
        """The ``index``-th usable host address (1-based inside the prefix)."""
        if not 0 < index < self.num_addresses:
            raise ValueError(f"host index {index} out of range for /{self._prefixlen}")
        return IPv4Address(self._net + index)

    def hosts(self) -> "list[IPv4Address]":
        """All host addresses (excluding network and broadcast for /<31)."""
        if self._prefixlen >= 31:
            return [IPv4Address(self._net + i) for i in range(self.num_addresses)]
        return [IPv4Address(self._net + i) for i in range(1, self.num_addresses - 1)]

    def overlaps(self, other: "IPv4Network") -> bool:
        shorter, longer = (self, other) if self._prefixlen <= other._prefixlen else (other, self)
        return (longer._net & IPv4Network._mask_for(shorter._prefixlen)) == shorter._net

    def __str__(self) -> str:
        return f"{IPv4Address(self._net)}/{self._prefixlen}"

    def __repr__(self) -> str:
        return f"IPv4Network({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, IPv4Network):
            return (self._net, self._prefixlen) == (other._net, other._prefixlen)
        return NotImplemented

    def __lt__(self, other: "IPv4Network") -> bool:
        if isinstance(other, IPv4Network):
            return (self._net, self._prefixlen) < (other._net, other._prefixlen)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self._net, self._prefixlen))


def longest_prefix_match(
    addr: IPv4Address, prefixes: "list[IPv4Network]"
) -> IPv4Network | None:
    """Return the most specific prefix containing ``addr``, or None."""
    best: IPv4Network | None = None
    for p in prefixes:
        if addr in p and (best is None or p.prefixlen > best.prefixlen):
            best = p
    return best


class MacAddress:
    """A 48-bit MAC address; hashable, comparable, printable."""

    __slots__ = ("_value",)

    def __init__(self, value: "int | str | MacAddress") -> None:
        if isinstance(value, MacAddress):
            self._value = value._value
        elif isinstance(value, int):
            if not 0 <= value <= 0xFFFFFFFFFFFF:
                raise ValueError(f"MAC int out of range: {value}")
            self._value = value
        elif isinstance(value, str):
            parts = value.split(":")
            if len(parts) != 6:
                raise ValueError(f"bad MAC {value!r}")
            v = 0
            for p in parts:
                v = (v << 8) | int(p, 16)
            self._value = v
        else:
            raise TypeError(f"cannot make MacAddress from {type(value).__name__}")

    @property
    def value(self) -> int:
        return self._value

    def octets(self) -> tuple[int, ...]:
        return tuple((self._value >> (8 * i)) & 0xFF for i in range(5, -1, -1))

    def __str__(self) -> str:
        return ":".join(f"{o:02x}" for o in self.octets())

    def __repr__(self) -> str:
        return f"MacAddress({str(self)!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MacAddress):
            return self._value == other._value
        return NotImplemented

    def __lt__(self, other: "MacAddress") -> bool:
        if isinstance(other, MacAddress):
            return self._value < other._value
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("mac", self._value))


class MacAllocator:
    """Hands out unique MAC addresses within one simulated world."""

    def __init__(self, oui: int = 0x02_00_5E) -> None:
        self._oui = oui
        self._next = 1

    def allocate(self) -> MacAddress:
        mac = MacAddress((self._oui << 24) | self._next)
        self._next += 1
        if self._next > 0xFFFFFF:
            raise RuntimeError("MAC allocator exhausted")
        return mac
