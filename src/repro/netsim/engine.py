"""Discrete-event simulation kernel.

The whole Remos stack — traffic sources, SNMP agents, collectors,
modelers — runs inside one simulated timeline owned by an
:class:`Engine`.  The kernel is deliberately small: a binary heap of
timestamped callbacks plus a current-time cursor.

Execution model
---------------
Callbacks are **atomic in simulated time** but may *consume* simulated
time themselves by calling :meth:`Engine.advance` (this is how a
blocking SNMP round-trip or an inter-component RPC charges its latency).
The dispatch rule is::

    pop the earliest event (time t)
    now = max(now, t)          # advances normally; never goes backward
    run the callback           # may call advance() internally

If a callback advances the clock past the scheduled time of the next
event, that event simply runs late — exactly what happens to a
single-threaded poller that is busy answering a long query.  Fluid
traffic state (see :mod:`repro.netsim.flows`) is integrated lazily from
rates, so reads at any ``now`` remain consistent even when events slip.

Periodic timers keep a fixed cadence (next tick at ``t0 + k*interval``);
ticks that would land in the past after a long callback are skipped,
matching how a real periodic monitor catches up after a stall.
"""

from __future__ import annotations

import heapq
import itertools
from contextlib import contextmanager
from typing import Callable, Iterator

from repro import obs


class _Event:
    """One scheduled callback.

    Heap entries are ``(time, seq, event)`` tuples rather than rich
    comparisons on the event object: tuple ordering runs native C
    float/int comparisons on every sift, which is the hottest code in a
    dense simulation (the seq tiebreaker is unique, so the event object
    itself is never compared).
    """

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False


def _entry(ev: _Event) -> "tuple[float, int, _Event]":
    return (ev.time, ev.seq, ev)


class Timer:
    """Handle to a scheduled (possibly periodic) event.

    ``cancel()`` prevents any further firing.  For periodic timers the
    handle stays valid across ticks.
    """

    def __init__(self) -> None:
        self._event: _Event | None = None
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True
        if self._event is not None:
            self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class OverlapScope:
    """Accounting for a group of logically concurrent blocking calls.

    Sequential code that models parallel fan-out (a Master delegating
    sub-queries to several collectors at once) runs its calls one after
    another, but the *simulated* cost should be the makespan of the
    parallel schedule, not the sum.  Each call is wrapped in
    :meth:`task`; the clock advances the task consumes are measured and
    rolled back, and when the scope closes the engine charges the
    makespan of scheduling the measured durations onto ``width``
    workers (greedy, in submission order).  ``width=0`` means
    unbounded parallelism (makespan = max task duration).

    Tasks must not dispatch engine events (``step``/``run``); plain
    ``advance`` consumers — SNMP exchanges, RPCs — are fine, which is
    exactly what a collector sub-query does.
    """

    def __init__(self, engine: "Engine", width: int = 0) -> None:
        if width < 0:
            raise ValueError("overlap width must be >= 0")
        self._engine = engine
        self._width = width
        #: measured duration of each task, in submission order
        self.durations: list[float] = []

    @contextmanager
    def task(self) -> Iterator[None]:
        """Run one concurrent task; its clock advances are captured."""
        t0 = self._engine._now
        try:
            yield
        finally:
            self.durations.append(self._engine._now - t0)
            # Concurrent siblings all start together: rewind so the
            # next task is measured from the same origin.  The scope
            # exit charges the combined (overlapped) cost once.
            self._engine._now = t0

    @property
    def serial_s(self) -> float:
        """What the tasks would have cost run back to back."""
        return sum(self.durations)

    @property
    def overlapped_s(self) -> float:
        """Makespan of the tasks on ``width`` workers (greedy)."""
        if not self.durations:
            return 0.0
        width = self._width if self._width > 0 else len(self.durations)
        if width >= len(self.durations):
            return max(self.durations)
        workers = [0.0] * width
        for d in self.durations:
            i = min(range(width), key=workers.__getitem__)
            workers[i] += d
        return max(workers)

    @property
    def saved_s(self) -> float:
        """Simulated time the overlap saved versus serial execution."""
        return self.serial_s - self.overlapped_s


class Engine:
    """Event queue + simulated clock.

    Typical driver loop::

        eng = Engine()
        eng.every(5.0, poller.tick)
        eng.at(10.0, lambda: traffic.start(...))
        eng.run_until(300.0)
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: list[tuple[float, int, _Event]] = []
        self._seq = itertools.count()
        #: number of callbacks dispatched (diagnostics / tests)
        self.dispatched = 0
        #: cached (registry, handles...) for _observe — the engine
        #: advances on every simulated RPC, so re-resolving four metric
        #: handles per advance would dominate live-registry overhead
        self._obs_handles: tuple | None = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling ---------------------------------------------------

    def at(self, time: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn`` at absolute simulated ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        timer = Timer()
        ev = _Event(time, next(self._seq), fn)
        timer._event = ev
        heapq.heappush(self._queue, _entry(ev))
        return timer

    def after(self, delay: float, fn: Callable[[], None]) -> Timer:
        """Run ``fn`` after ``delay`` seconds of simulated time."""
        if delay < 0:
            raise ValueError("delay must be >= 0")
        return self.at(self._now + delay, fn)

    def every(
        self,
        interval: float,
        fn: Callable[[], None],
        *,
        start: float | None = None,
    ) -> Timer:
        """Run ``fn`` periodically with a fixed cadence.

        The first tick is at ``start`` (default: now + interval).  If a
        long callback pushes the clock past one or more scheduled
        ticks, those ticks are skipped rather than fired in a burst.
        """
        if interval <= 0:
            raise ValueError("interval must be > 0")
        timer = Timer()
        first = self._now + interval if start is None else start

        def tick_wrapper(scheduled: float) -> None:
            if timer._cancelled:
                return
            fn()
            if timer._cancelled:
                return
            nxt = scheduled + interval
            while nxt <= self._now:  # catch up without a tick burst
                nxt += interval
            ev = _Event(nxt, next(self._seq), lambda: tick_wrapper(nxt))
            timer._event = ev
            heapq.heappush(self._queue, _entry(ev))

        ev = _Event(first, next(self._seq), lambda: tick_wrapper(first))
        timer._event = ev
        heapq.heappush(self._queue, _entry(ev))
        return timer

    # -- time consumption inside callbacks -----------------------------

    def advance(self, dt: float) -> None:
        """Consume ``dt`` seconds of simulated time inside a callback.

        Used by blocking operations (SNMP round trips, RPCs, benchmark
        transfers) to charge their duration to the simulation clock.
        """
        if dt < 0:
            raise ValueError("cannot advance backwards")
        self._now += dt

    def cap_since(self, t0: float, cap_s: float) -> bool:
        """Clamp time consumed since ``t0`` to at most ``cap_s``.

        Models a deadline on a blocking call: the caller stops waiting
        at ``t0 + cap_s`` even if the callee would have kept burning
        time.  Returns True when the clamp fired (the call overran its
        deadline).  Only valid for plain ``advance`` consumers — the
        same restriction as :class:`OverlapScope` tasks.
        """
        if cap_s < 0:
            raise ValueError("cap must be >= 0")
        if self._now - t0 <= cap_s:
            return False
        self._now = t0 + cap_s
        return True

    @contextmanager
    def overlap(self, width: int = 0) -> Iterator[OverlapScope]:
        """Charge a group of blocking calls as if run concurrently.

        ::

            with engine.overlap(width=8) as ov:
                for frag in fragments:
                    with ov.task():
                        responses.append(collector.topology(frag))

        On exit the clock has advanced by the makespan of the tasks on
        ``width`` workers instead of their sum (``width=0`` =
        unbounded).  Scopes nest: an inner overlap's makespan simply
        counts toward the enclosing task's duration.
        """
        scope = OverlapScope(self, width)
        try:
            yield scope
        finally:
            self._now += scope.overlapped_s

    # -- running --------------------------------------------------------

    def step(self) -> bool:
        """Dispatch the next event.  Returns False if the queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)[2]
            if ev.cancelled:
                continue
            if ev.time > self._now:
                self._now = ev.time
            self.dispatched += 1
            ev.fn()
            return True
        return False

    def run_until(self, t_end: float) -> None:
        """Dispatch events until the clock would pass ``t_end``.

        The clock finishes exactly at ``t_end`` unless a callback
        overshot it by advancing internally.
        """
        t0, d0 = self._now, self.dispatched
        while self._queue:
            ev = self._queue[0][2]
            if ev.cancelled:
                heapq.heappop(self._queue)
                continue
            if ev.time > t_end:
                break
            self.step()
        if self._now < t_end:
            self._now = t_end
        self._observe(t0, d0)

    def run(self, max_events: int = 1_000_000) -> None:
        """Run until the queue drains (bounded by ``max_events``)."""
        t0, d0 = self._now, self.dispatched
        for _ in range(max_events):
            if not self.step():
                self._observe(t0, d0)
                return
        raise RuntimeError(f"engine did not quiesce within {max_events} events")

    def _observe(self, t0: float, d0: int) -> None:
        """Report one run's aggregates to the metrics registry.

        Aggregated per run rather than per event so the dispatch loop
        itself carries no instrumentation overhead.  The four handles
        are cached per registry: name-based resolution on every advance
        would cost more than the rest of the advance itself.
        """
        reg = obs.get_registry()
        handles = self._obs_handles
        if handles is None or handles[0] is not reg:
            handles = self._obs_handles = (
                reg,
                reg.counter("netsim.engine.events"),
                reg.counter("netsim.engine.sim_advance_s"),
                reg.gauge("netsim.engine.sim_time_s"),
                reg.gauge("netsim.engine.queue_depth"),
            )
        handles[1].inc(self.dispatched - d0)
        handles[2].inc(self._now - t0)
        handles[3].set(self._now)
        handles[4].set(len(self._queue))

    def pending(self) -> int:
        """Number of live events still queued."""
        return sum(1 for _, _, ev in self._queue if not ev.cancelled)
