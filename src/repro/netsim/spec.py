"""Declarative topology specifications.

Build a :class:`~repro.netsim.topology.Network` from a plain dict (or
JSON text), and export an existing network back to one — so topologies
can live in files, be shared in bug reports, and round-trip through
tests.  The format::

    {
      "nodes": [
        {"name": "h1", "kind": "host"},
        {"name": "r1", "kind": "router"},
        {"name": "sw1", "kind": "switch"},
        {"name": "hub1", "kind": "hub"},
        {"name": "ap1", "kind": "basestation", "air_rate_mbps": 11}
      ],
      "links": [
        {"a": "h1", "b": "sw1", "capacity_mbps": 100,
         "latency_ms": 0.5,
         "a_ip": "10.0.0.10", "b_ip": null, "subnet": "10.0.0.0/24"}
      ],
      "management": [
        {"node": "sw1", "ip": "10.0.0.2", "subnet": "10.0.0.0/24"}
      ]
    }

``a_ip``/``b_ip`` assign addresses to the link's two interfaces (null =
unaddressed, e.g. a switch port).  Management entries give switches and
basestations their SNMP address on the first interface.
"""

from __future__ import annotations

import json

from repro.common.errors import TopologyError
from repro.common.units import MBPS
from repro.netsim.topology import Host, Hub, Network, Node, Router, Switch

_KINDS = ("host", "router", "switch", "hub", "basestation")


class SpecError(TopologyError):
    """The specification is malformed."""


def network_from_spec(spec: dict, freeze: bool = True) -> Network:
    """Build a network from a spec dict (see module docstring)."""
    if not isinstance(spec, dict):
        raise SpecError("spec must be a dict")
    net = Network()
    for node_doc in spec.get("nodes", []):
        name = node_doc.get("name")
        kind = node_doc.get("kind")
        if not name or kind not in _KINDS:
            raise SpecError(f"bad node entry {node_doc!r}")
        if kind == "host":
            net.add_host(name)
        elif kind == "router":
            net.add_router(name)
        elif kind == "switch":
            net.add_switch(name, int(node_doc.get("bridge_priority", 32768)))
        elif kind == "hub":
            net.add_hub(name)
        else:  # basestation
            from repro.netsim.wireless import Basestation

            bs = Basestation(
                net, name, float(node_doc.get("air_rate_mbps", 11)) * MBPS
            )
            net._add_node(bs)
    for link_doc in spec.get("links", []):
        try:
            a = net.node(link_doc["a"])
            b = net.node(link_doc["b"])
            cap = float(link_doc["capacity_mbps"]) * MBPS
        except (KeyError, ValueError, TypeError, TopologyError) as exc:
            raise SpecError(f"bad link entry {link_doc!r}: {exc}") from exc
        latency = float(link_doc.get("latency_ms", 0.5)) / 1000.0
        ln = net.link(a, b, cap, latency)
        for end, key in ((ln.a, "a"), (ln.b, "b")):
            ip = link_doc.get(f"{key}_ip")
            if ip:
                subnet = link_doc.get(f"{key}_subnet") or link_doc.get("subnet")
                if not subnet:
                    raise SpecError(
                        f"link {link_doc!r} assigns {key}_ip without a subnet"
                    )
                net.assign_ip(end, ip, subnet)
    for mgmt in spec.get("management", []):
        try:
            node = net.node(mgmt["node"])
        except KeyError as exc:
            raise SpecError(f"bad management entry {mgmt!r}") from exc
        if not node.interfaces:
            raise SpecError(f"{node.name} has no interfaces for a management IP")
        net.assign_ip(node.interfaces[0], mgmt["ip"], mgmt["subnet"])
        if hasattr(node, "management_ip"):
            node.management_ip = node.interfaces[0].ip
    if freeze:
        net.freeze()
    return net


def spec_from_network(net: Network) -> dict:
    """Export a network (built any way) back to a spec dict.

    Addresses assigned to first interfaces of switches/basestations are
    exported as management entries; all other interface addresses ride
    on their links.
    """
    from repro.netsim.wireless import Basestation

    nodes = []
    mgmt_ifaces = {}
    for name in sorted(net.nodes):
        node = net.nodes[name]
        if isinstance(node, Basestation):
            nodes.append(
                {
                    "name": name,
                    "kind": "basestation",
                    "air_rate_mbps": node.air_rate_bps / MBPS,
                }
            )
        elif isinstance(node, Host):
            nodes.append({"name": name, "kind": "host"})
        elif isinstance(node, Router):
            nodes.append({"name": name, "kind": "router"})
        elif isinstance(node, Switch):
            nodes.append(
                {"name": name, "kind": "switch",
                 "bridge_priority": node.bridge_priority}
            )
        elif isinstance(node, Hub):
            nodes.append({"name": name, "kind": "hub"})
        else:
            raise SpecError(f"cannot export node kind {node.kind!r}")
        management_ip = getattr(node, "management_ip", None)
        if management_ip is not None and node.interfaces:
            first = node.interfaces[0]
            if first.ip == management_ip:
                mgmt_ifaces[id(first)] = {
                    "node": name,
                    "ip": str(management_ip),
                    "subnet": str(first.network),
                }
    links = []
    for ln in net.links:
        doc = {
            "a": ln.a.device.name,
            "b": ln.b.device.name,
            "capacity_mbps": ln.capacity_bps / MBPS,
            "latency_ms": ln.latency_s * 1000.0,
        }
        subnets = {}
        for end, key in ((ln.a, "a"), (ln.b, "b")):
            if end.ip is not None and id(end) not in mgmt_ifaces:
                doc[f"{key}_ip"] = str(end.ip)
                subnets[key] = str(end.network)
        if len(set(subnets.values())) == 1:
            doc["subnet"] = next(iter(subnets.values()))
        else:
            for key, s in subnets.items():
                doc[f"{key}_subnet"] = s
        links.append(doc)
    return {
        "nodes": nodes,
        "links": links,
        "management": sorted(mgmt_ifaces.values(), key=lambda m: m["node"]),
    }


def network_from_json(text: str, freeze: bool = True) -> Network:
    try:
        return network_from_spec(json.loads(text), freeze)
    except json.JSONDecodeError as exc:
        raise SpecError(f"bad JSON: {exc}") from exc


def network_to_json(net: Network, indent: int | None = 2) -> str:
    return json.dumps(spec_from_network(net), indent=indent)
