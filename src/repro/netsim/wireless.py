"""Wireless LAN modelling: basestations, association, and roaming.

The paper lists "a collector for wireless LANs (802.11)" as under
development (§3.1) and names mobile-host support as ongoing work
(§6.2).  The substrate here models an infrastructure-mode WLAN at the
fidelity Remos cares about:

* A :class:`Basestation` is a shared-medium attachment point: every
  associated station's traffic crosses the *cell*, so a cell behaves
  like a hub whose uplink capacity is the air-interface rate.  (This
  is exactly the "shared Ethernet -> virtual switch" representation the
  paper uses.)
* Stations associate with one basestation at a time;
  :func:`associate` re-homes the host (see
  :mod:`repro.netsim.mobility`), breaking flows like a real handoff.
* Each basestation keeps an **association table** — the wireless
  analogue of the bridge forwarding database — that the Wireless
  Collector reads over SNMP.
"""

from __future__ import annotations

from repro.common.errors import TopologyError
from repro.common.units import MBPS
from repro.netsim.address import IPv4Address, MacAddress
from repro.netsim.flows import Flow
from repro.netsim.mobility import rehome_host
from repro.netsim.topology import Host, Hub, Network, Switch


class Basestation(Hub):
    """An 802.11-style access point: a hub-like cell with an uplink.

    ``air_rate_bps`` is the shared medium rate; station links are
    created at this rate and the cell's uplink is capped by it too, so
    max-min sharing over the uplink approximates air-time sharing.
    """

    kind = "basestation"

    def __init__(self, network: Network, name: str, air_rate_bps: float = 11 * MBPS) -> None:
        super().__init__(network, name)
        self.air_rate_bps = air_rate_bps
        #: management address for the wireless collector's SNMP queries
        self.management_ip: IPv4Address | None = None
        self.snmp_reachable = True

    def associated_stations(self) -> list[MacAddress]:
        """MACs of hosts currently attached to this cell (the
        association table a real AP exposes)."""
        macs = []
        for iface in self.interfaces:
            if iface.link is None:
                continue
            peer = iface.link.other(iface)
            if isinstance(peer.device, Host) and peer.mac is not None:
                macs.append(peer.mac)
        return sorted(macs, key=lambda m: m.value)


def add_basestation(
    net: Network,
    name: str,
    uplink_to: Switch,
    air_rate_bps: float = 11 * MBPS,
    uplink_bps: float | None = None,
) -> Basestation:
    """Create a basestation wired into the distribution switch."""
    bs = Basestation(net, name, air_rate_bps)
    net._add_node(bs)
    net.link(bs, uplink_to, uplink_bps if uplink_bps is not None else air_rate_bps)
    return bs


def associate(net: Network, host: Host, basestation: Basestation) -> list[Flow]:
    """(Re-)associate a wireless host with a basestation.

    Returns the flows broken by the handoff (empty when the host was
    already associated there).
    """
    if not isinstance(basestation, Basestation):
        raise TopologyError("can only associate with a basestation")
    iface = host.interfaces[0] if host.interfaces else None
    if iface is None or iface.link is None:
        raise TopologyError(f"{host.name} has no attached interface to hand off")
    return rehome_host(net, host, basestation, capacity_bps=basestation.air_rate_bps)


def current_basestation(host: Host) -> Basestation | None:
    """The basestation a host is associated with, if any."""
    for iface in host.interfaces:
        if iface.link is None:
            continue
        dev = iface.link.other(iface).device
        if isinstance(dev, Basestation):
            return dev
    return None
