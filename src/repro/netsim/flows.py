"""Fluid flows with max-min fair bandwidth sharing.

Traffic is modelled at flow granularity: each :class:`Flow` occupies a
fixed path of directed channels and receives a rate from the global
**max-min fair allocation** (progressive filling / water-filling) over
all active flows, honouring per-flow demand caps.  This is the standard
fluid approximation of many concurrent TCP flows and is what makes
octet counters exactly integrable: between allocation changes every
rate is constant.

The :class:`FlowManager` recomputes the allocation whenever a flow
starts, stops, or changes demand, synchronising all affected channel
counters first so the integral stays exact.  Finite transfers
(``total_bytes``) get completion events scheduled on the engine and
re-scheduled whenever their allocated rate changes.

Progressive filling (Bertsekas & Gallager): grow all unfrozen flow
rates at one common level; the first constraint to bind is either a
flow's demand (freeze that flow) or a link's capacity (freeze every
unfrozen flow crossing it).  Repeat until all flows are frozen.

The solver itself is a vectorised numpy kernel
(:func:`max_min_allocation`): flows and channels become index spaces,
the incidence matrix turns the per-channel active-count and frozen-load
scans into two matrix-vector products, and each water-level step is a
handful of array reductions instead of python loops.  The original
pure-python solver is kept verbatim as
:func:`max_min_allocation_reference`, the oracle the kernel is
property-tested against (agreement within 1e-9 across randomised
path/demand sets).
"""

from __future__ import annotations

import itertools
import math
from typing import TYPE_CHECKING, Callable, Protocol, Sequence

import numpy as np

from repro import obs
from repro.common.errors import TopologyError
from repro.common.units import BITS_PER_BYTE
from repro.netsim.engine import Timer

if TYPE_CHECKING:
    from repro.netsim.topology import Channel, Host, Network

#: freeze threshold shared by the kernel and the reference solver
_EPS = 1e-12

#: incidence entries (sum of path lengths) below which the scalar
#: solver is dispatched instead of the numpy kernel.  Array-op fixed
#: costs (~100us) dwarf the O(entries x rounds) python loop for small
#: problems; the crossover sits around a hundred entries.  Equivalence
#: tests pin this to 0 to force the kernel at every size.
_KERNEL_MIN_ENTRIES = 128


class CapacityLike(Protocol):
    """What the allocator needs from a constraint: a capacity.

    Satisfied by :class:`~repro.netsim.topology.Channel` (the fluid
    substrate) and by the Modeler's directed residual constraints
    (:class:`repro.modeler.maxmin._DirCap`).
    """

    capacity_bps: float


class Flow:
    """One fluid flow: a path, a demand cap, and an allocated rate.

    ``demand_bps=inf`` models a greedy (TCP-saturating) flow;
    ``total_bytes`` turns it into a finite transfer whose completion
    fires ``on_complete(flow)``.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        src: "Host",
        dst: "Host",
        path: "list[Channel]",
        demand_bps: float = math.inf,
        total_bytes: float | None = None,
        on_complete: "Callable[[Flow], None] | None" = None,
        label: str = "",
    ) -> None:
        self.id = next(Flow._ids)
        self.src = src
        self.dst = dst
        self.path = path
        self.demand_bps = demand_bps
        self.total_bytes = total_bytes
        self.bytes_remaining = total_bytes
        self.on_complete = on_complete
        self.label = label or f"flow{self.id}"
        #: current max-min allocated rate (maintained by FlowManager)
        self.rate_bps = 0.0
        #: cumulative bytes actually delivered
        self.bytes_done = 0.0
        self.active = False
        self.start_time: float | None = None
        self.end_time: float | None = None
        self._completion_timer: Timer | None = None
        self._last_settle = 0.0

    def __repr__(self) -> str:
        return f"Flow({self.label}: {self.src.name}->{self.dst.name}, rate={self.rate_bps:.0f}bps)"


class FlowManager:
    """Owns the set of active flows and the max-min allocation."""

    def __init__(self, network: "Network") -> None:
        self.network = network
        self.flows: dict[int, Flow] = {}
        #: allocation recomputations performed (diagnostics)
        self.recomputes = 0
        #: channel registry: id(channel) -> channel, for every channel
        #: carrying a nonzero aggregate rate under the current
        #: allocation.  Re-application after a recompute walks the old
        #: and new allocation's channels only — never every channel in
        #: the network — so the cost of a flow change scales with the
        #: traffic it touches, not with topology size.
        self._alloc_channels: "dict[int, Channel]" = {}
        #: sim time of the last settle sweep; repeated recomputes within
        #: one engine tick skip re-settling (zero elapsed time moves no
        #: counter), batching the per-flow sync cost per tick.
        self._settled_at = -math.inf

    # -- public API ------------------------------------------------------

    def start_flow(
        self,
        src: "Host | str",
        dst: "Host | str",
        demand_bps: float = math.inf,
        total_bytes: float | None = None,
        on_complete: "Callable[[Flow], None] | None" = None,
        label: str = "",
    ) -> Flow:
        """Begin a flow now; the allocation is recomputed immediately."""
        from repro.netsim.paths import compute_path

        net = self.network
        if isinstance(src, str):
            src = net.host(src)
        if isinstance(dst, str):
            dst = net.host(dst)
        if src is dst:
            raise TopologyError("flow endpoints must differ")
        path = compute_path(net, src, dst)
        flow = Flow(src, dst, path, demand_bps, total_bytes, on_complete, label)
        flow.active = True
        flow.start_time = net.now
        flow._last_settle = net.now
        self.flows[flow.id] = flow
        self._reallocate()
        return flow

    def stop_flow(self, flow: Flow) -> None:
        """End a flow now (idempotent)."""
        if not flow.active:
            return
        self._settle(flow)
        flow.active = False
        flow.end_time = self.network.now
        flow.rate_bps = 0.0
        if flow._completion_timer is not None:
            flow._completion_timer.cancel()
            flow._completion_timer = None
        del self.flows[flow.id]
        self._reallocate()

    def set_demand(self, flow: Flow, demand_bps: float) -> None:
        """Change a flow's demand cap; rates are re-balanced."""
        if demand_bps < 0:
            raise ValueError("demand must be >= 0")
        if not flow.active:
            raise ValueError("flow is not active")
        self._settle(flow)
        flow.demand_bps = demand_bps
        self._reallocate()

    def active_flows(self) -> list[Flow]:
        return list(self.flows.values())

    def flows_on(self, channel: "Channel") -> list[Flow]:
        return [f for f in self.flows.values() if channel in f.path]

    # -- allocation --------------------------------------------------------

    def _settle(self, flow: Flow) -> None:
        """Fold a flow's progress forward to `now` at its current rate."""
        now = self.network.now
        if flow.start_time is None:
            return
        last = flow._last_settle
        if now > last:
            moved = flow.rate_bps * (now - last) / BITS_PER_BYTE
            flow.bytes_done += moved
            if flow.bytes_remaining is not None:
                flow.bytes_remaining = max(0.0, flow.bytes_remaining - moved)
        flow._last_settle = now

    def _reallocate(self) -> None:
        """Recompute the global max-min fair allocation.

        Per-flow progress is synchronised to `now` before any rate
        changes so integrals remain exact; the settle sweep runs at most
        once per engine tick (repeated recomputes at one sim instant
        cannot move any counter).  Channel aggregates are re-applied
        incrementally through the channel registry: only channels whose
        membership or rate actually changed are synced and written.
        """
        now = self.network.now
        self.recomputes += 1
        flows = [f for f in self.flows.values() if f.active]

        # Settle byte accounting at the old rates (once per tick).
        if now != self._settled_at:
            for f in flows:
                self._settle(f)
            self._settled_at = now

        rates = max_min_allocation(
            [f.path for f in flows], [f.demand_bps for f in flows]
        )

        # Apply new rates to flows and channel aggregates.  A channel
        # needs a counter sync exactly when its aggregate rate changes:
        # candidates are the channels of the new allocation plus the
        # registry of channels the previous allocation loaded (those
        # that lost their last flow need zeroing).
        per_channel: dict[int, float] = {}
        chan_by_id: "dict[int, Channel]" = {}
        for f, r in zip(flows, rates):
            f.rate_bps = r
            for ch in f.path:
                cid = id(ch)
                per_channel[cid] = per_channel.get(cid, 0.0) + r
                chan_by_id[cid] = ch
        touched = 0
        for cid, ch in chan_by_id.items():
            new_rate = per_channel[cid]
            if ch.rate_sum != new_rate:
                ch.sync(now)
                ch.rate_sum = new_rate
                touched += 1
        for cid, ch in self._alloc_channels.items():
            if cid not in chan_by_id and ch.rate_sum != 0.0:
                ch.sync(now)
                ch.rate_sum = 0.0
                touched += 1
        self._alloc_channels = {
            cid: ch for cid, ch in chan_by_id.items() if per_channel[cid] != 0.0
        }
        obs.counter("netsim.flows.realloc_channels_touched").inc(touched)

        # Re-schedule completion events for finite transfers.
        for f in flows:
            if f.bytes_remaining is None:
                continue
            if f._completion_timer is not None:
                f._completion_timer.cancel()
                f._completion_timer = None
            if f.bytes_remaining <= 0:
                self.network.engine.after(0.0, lambda f=f: self._complete(f))
            elif f.rate_bps > 0:
                eta = f.bytes_remaining * BITS_PER_BYTE / f.rate_bps
                f._completion_timer = self.network.engine.after(
                    eta, lambda f=f: self._complete(f)
                )

    def _complete(self, flow: Flow) -> None:
        if not flow.active:
            return
        self._settle(flow)
        if flow.bytes_remaining is not None and flow.bytes_remaining > 1e-6:
            return  # a reallocation slowed it down; a newer timer exists
        cb = flow.on_complete
        self.stop_flow(flow)
        if cb is not None:
            cb(flow)


def max_min_allocation(
    paths: "Sequence[Sequence[CapacityLike]]", demands: Sequence[float]
) -> list[float]:
    """Max-min fair rates for flows over shared channels (numpy kernel).

    Progressive filling: all unfrozen flows share one water level; at
    each step the next binding constraint is either a flow demand or a
    channel capacity.  The per-step scans over channels are expressed as
    matrix-vector products against the flows×channels incidence matrix,
    so one step costs a few vectorised reductions regardless of path
    lengths; the step count is bounded by flows + channels.

    Zero-length paths (src == dst within one node) get their full
    demand.  Semantics (freeze thresholds, infinite demands, level
    fallback) mirror :func:`max_min_allocation_reference` exactly; the
    two agree within 1e-9 (property-tested).

    Dispatch is size-aware: below :data:`_KERNEL_MIN_ENTRIES` incidence
    entries the scalar reference solver is faster than numpy's fixed
    per-op cost and is used directly; the dispatch depends only on
    problem shape, so any given workload is deterministic about which
    solver it sees.
    """
    n = len(paths)
    if n == 0:
        return []
    if sum(len(p) for p in paths) < _KERNEL_MIN_ENTRIES:
        return max_min_allocation_reference(paths, demands)
    rates = [0.0] * n

    # Kernel-local flow index over constrained flows only; zero-length
    # paths are resolved immediately (full demand).
    constrained: list[int] = []
    for i, path in enumerate(paths):
        if not path:
            rates[i] = demands[i] if math.isfinite(demands[i]) else math.inf
        else:
            constrained.append(i)
    if not constrained:
        return rates

    # Unique channels and (channel row, flow column) incidence entries.
    chan_index: dict[int, int] = {}
    caps: list[float] = []
    rows: list[int] = []
    cols: list[int] = []
    for k, i in enumerate(constrained):
        for ch in paths[i]:
            cid = id(ch)
            row = chan_index.get(cid)
            if row is None:
                row = chan_index[cid] = len(caps)
                caps.append(ch.capacity_bps)
            rows.append(row)
            cols.append(k)

    with obs.span("netsim.maxmin.kernel"):
        nf = len(constrained)
        nc = len(caps)
        # bincount over flattened (row, col) indices builds the dense
        # incidence matrix far faster than np.add.at for small problems
        flat = np.asarray(rows, dtype=np.intp) * nf + np.asarray(cols, dtype=np.intp)
        incidence = (
            np.bincount(flat, minlength=nc * nf).reshape(nc, nf).astype(float)
        )
        cap = np.asarray(caps, dtype=float)
        demand = np.asarray([demands[i] for i in constrained], dtype=float)
        rate = np.zeros(nf)
        frozen = np.zeros(nf, dtype=bool)
        level = 0.0
        rounds = 0
        for _ in range(nf + nc + 1):
            unfrozen = ~frozen
            if not bool(unfrozen.any()):
                break
            rounds += 1
            # Next demand bind.
            delta_demand = float(np.min(demand[unfrozen])) - level
            # Next capacity bind (np.divide's where-mask keeps channels
            # with no unfrozen members out of contention without
            # tripping warnings on 0/0).
            active = incidence @ unfrozen.astype(float)
            frozen_load = incidence @ np.where(frozen, rate, 0.0)
            has_active = active > 0.0
            headroom = np.divide(
                cap - frozen_load - level * active,
                active,
                out=np.full(nc, math.inf),
                where=has_active,
            )
            delta_cap = (
                float(np.min(headroom[has_active])) if bool(has_active.any()) else math.inf
            )
            delta = min(delta_demand, delta_cap)
            if not math.isfinite(delta):
                # Only infinite demands remain and no capacity binds: the
                # paths must be capacity-free (impossible for real links).
                rate[unfrozen] = math.inf
                frozen[unfrozen] = True
                break
            level += max(delta, 0.0)
            # Freeze at binding constraints: demands first, then every
            # unfrozen flow crossing a saturated channel.
            at_demand = unfrozen & (demand - level <= _EPS)
            rate = np.where(at_demand, demand, rate)
            frozen = frozen | at_demand
            unfrozen = ~frozen
            active = incidence @ unfrozen.astype(float)
            frozen_load = incidence @ np.where(frozen, rate, 0.0)
            has_active = active > 0.0
            headroom = np.divide(
                cap - frozen_load - level * active,
                active,
                out=np.full(nc, math.inf),
                where=has_active,
            )
            saturated = has_active & (headroom <= _EPS)
            if bool(saturated.any()):
                members = (incidence[saturated].sum(axis=0) > 0.0) & unfrozen
                rate = np.where(members, level, rate)
                frozen = frozen | members
        leftover = ~frozen
        if bool(leftover.any()):
            rate = np.where(leftover, np.minimum(level, demand), rate)

    for k, i in enumerate(constrained):
        rates[i] = float(rate[k])
    obs.histogram("netsim.maxmin.rounds").observe(rounds)
    return rates


def max_min_allocation_reference(
    paths: "Sequence[Sequence[CapacityLike]]", demands: Sequence[float]
) -> list[float]:
    """Pure-python progressive filling: the kernel's reference oracle.

    This is the original loop-over-dicts solver, kept verbatim as
    ground truth for equivalence tests against the vectorised
    :func:`max_min_allocation` — and as that function's small-problem
    fast path.  Runs in O(iterations × flows × path length); the
    iteration count is bounded by flows + channels.
    """
    n = len(paths)
    if n == 0:
        return []
    rates = [0.0] * n
    frozen = [False] * n

    # channel id -> (capacity, list of flow indices)
    chan_cap: dict[int, float] = {}
    chan_flows: dict[int, list[int]] = {}
    for i, path in enumerate(paths):
        if not path:
            rates[i] = demands[i] if math.isfinite(demands[i]) else math.inf
            frozen[i] = True
            continue
        for ch in path:
            if id(ch) not in chan_cap:
                chan_cap[id(ch)] = ch.capacity_bps
                chan_flows[id(ch)] = []
            chan_flows[id(ch)].append(i)

    level = 0.0
    rounds = 0
    for _ in range(n + len(chan_cap) + 1):
        unfrozen = [i for i in range(n) if not frozen[i]]
        if not unfrozen:
            break
        rounds += 1
        # Next demand bind.
        delta_demand = math.inf
        for i in unfrozen:
            d = demands[i] - level
            if d < delta_demand:
                delta_demand = d
        # Next capacity bind.
        delta_cap = math.inf
        for cid, members in chan_flows.items():
            active = [i for i in members if not frozen[i]]
            if not active:
                continue
            frozen_load = sum(rates[i] for i in members if frozen[i])
            residual = chan_cap[cid] - frozen_load - level * len(active)
            d = residual / len(active)
            if d < delta_cap:
                delta_cap = d
        delta = min(delta_demand, delta_cap)
        if not math.isfinite(delta):
            # Only infinite demands remain and no capacity binds: the
            # paths must be capacity-free (impossible for real links).
            for i in unfrozen:
                rates[i] = math.inf
                frozen[i] = True
            break
        delta = max(delta, 0.0)
        level += delta
        # Freeze at binding constraints.
        for i in unfrozen:
            if demands[i] - level <= _EPS:
                rates[i] = demands[i]
                frozen[i] = True
        for cid, members in chan_flows.items():
            active = [i for i in members if not frozen[i]]
            if not active:
                continue
            frozen_load = sum(rates[i] for i in members if frozen[i])
            residual = chan_cap[cid] - frozen_load - level * len(active)
            if residual / len(active) <= _EPS:
                for i in active:
                    rates[i] = level
                    frozen[i] = True
    for i in range(n):
        if not frozen[i]:
            rates[i] = min(level, demands[i])
    obs.histogram("netsim.maxmin.rounds").observe(rounds)
    return rates
