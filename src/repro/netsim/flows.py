"""Fluid flows with max-min fair bandwidth sharing.

Traffic is modelled at flow granularity: each :class:`Flow` occupies a
fixed path of directed channels and receives a rate from the global
**max-min fair allocation** (progressive filling / water-filling) over
all active flows, honouring per-flow demand caps.  This is the standard
fluid approximation of many concurrent TCP flows and is what makes
octet counters exactly integrable: between allocation changes every
rate is constant.

The :class:`FlowManager` recomputes the allocation whenever a flow
starts, stops, or changes demand, synchronising all affected channel
counters first so the integral stays exact.  Finite transfers
(``total_bytes``) get completion events scheduled on the engine and
re-scheduled whenever their allocated rate changes.

Progressive filling (Bertsekas & Gallager): grow all unfrozen flow
rates at one common level; the first constraint to bind is either a
flow's demand (freeze that flow) or a link's capacity (freeze every
unfrozen flow crossing it).  Repeat until all flows are frozen.
"""

from __future__ import annotations

import itertools
import math
from typing import TYPE_CHECKING, Callable

from repro import obs
from repro.common.errors import TopologyError
from repro.common.units import BITS_PER_BYTE
from repro.netsim.engine import Timer

if TYPE_CHECKING:
    from repro.netsim.topology import Channel, Host, Network


class Flow:
    """One fluid flow: a path, a demand cap, and an allocated rate.

    ``demand_bps=inf`` models a greedy (TCP-saturating) flow;
    ``total_bytes`` turns it into a finite transfer whose completion
    fires ``on_complete(flow)``.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        src: "Host",
        dst: "Host",
        path: "list[Channel]",
        demand_bps: float = math.inf,
        total_bytes: float | None = None,
        on_complete: "Callable[[Flow], None] | None" = None,
        label: str = "",
    ) -> None:
        self.id = next(Flow._ids)
        self.src = src
        self.dst = dst
        self.path = path
        self.demand_bps = demand_bps
        self.total_bytes = total_bytes
        self.bytes_remaining = total_bytes
        self.on_complete = on_complete
        self.label = label or f"flow{self.id}"
        #: current max-min allocated rate (maintained by FlowManager)
        self.rate_bps = 0.0
        #: cumulative bytes actually delivered
        self.bytes_done = 0.0
        self.active = False
        self.start_time: float | None = None
        self.end_time: float | None = None
        self._completion_timer: Timer | None = None
        self._last_settle = 0.0

    def __repr__(self) -> str:
        return f"Flow({self.label}: {self.src.name}->{self.dst.name}, rate={self.rate_bps:.0f}bps)"


class FlowManager:
    """Owns the set of active flows and the max-min allocation."""

    def __init__(self, network: "Network") -> None:
        self.network = network
        self.flows: dict[int, Flow] = {}
        #: allocation recomputations performed (diagnostics)
        self.recomputes = 0

    # -- public API ------------------------------------------------------

    def start_flow(
        self,
        src: "Host | str",
        dst: "Host | str",
        demand_bps: float = math.inf,
        total_bytes: float | None = None,
        on_complete: "Callable[[Flow], None] | None" = None,
        label: str = "",
    ) -> Flow:
        """Begin a flow now; the allocation is recomputed immediately."""
        from repro.netsim.paths import compute_path

        net = self.network
        if isinstance(src, str):
            src = net.host(src)
        if isinstance(dst, str):
            dst = net.host(dst)
        if src is dst:
            raise TopologyError("flow endpoints must differ")
        path = compute_path(net, src, dst)
        flow = Flow(src, dst, path, demand_bps, total_bytes, on_complete, label)
        flow.active = True
        flow.start_time = net.now
        flow._last_settle = net.now
        self.flows[flow.id] = flow
        self._reallocate()
        return flow

    def stop_flow(self, flow: Flow) -> None:
        """End a flow now (idempotent)."""
        if not flow.active:
            return
        self._settle(flow)
        flow.active = False
        flow.end_time = self.network.now
        flow.rate_bps = 0.0
        if flow._completion_timer is not None:
            flow._completion_timer.cancel()
            flow._completion_timer = None
        del self.flows[flow.id]
        self._reallocate()

    def set_demand(self, flow: Flow, demand_bps: float) -> None:
        """Change a flow's demand cap; rates are re-balanced."""
        if demand_bps < 0:
            raise ValueError("demand must be >= 0")
        if not flow.active:
            raise ValueError("flow is not active")
        self._settle(flow)
        flow.demand_bps = demand_bps
        self._reallocate()

    def active_flows(self) -> list[Flow]:
        return list(self.flows.values())

    def flows_on(self, channel: "Channel") -> list[Flow]:
        return [f for f in self.flows.values() if channel in f.path]

    # -- allocation --------------------------------------------------------

    def _settle(self, flow: Flow) -> None:
        """Fold a flow's progress forward to `now` at its current rate."""
        now = self.network.now
        if flow.start_time is None:
            return
        last = flow._last_settle
        if now > last:
            moved = flow.rate_bps * (now - last) / BITS_PER_BYTE
            flow.bytes_done += moved
            if flow.bytes_remaining is not None:
                flow.bytes_remaining = max(0.0, flow.bytes_remaining - moved)
        flow._last_settle = now

    def _reallocate(self) -> None:
        """Recompute the global max-min fair allocation.

        Channel counters and per-flow progress are synchronised to `now`
        before any rate changes so integrals remain exact.
        """
        now = self.network.now
        self.recomputes += 1
        flows = [f for f in self.flows.values() if f.active]

        # Settle byte accounting at the old rates.
        touched: set[int] = set()
        for f in flows:
            self._settle(f)
            for ch in f.path:
                if id(ch) not in touched:
                    touched.add(id(ch))
                    ch.sync(now)

        rates = max_min_allocation(
            [f.path for f in flows], [f.demand_bps for f in flows]
        )

        # Apply new rates to flows and channel aggregates.
        per_channel: dict[int, float] = {}
        chan_by_id: dict[int, "Channel"] = {}
        for f, r in zip(flows, rates):
            f.rate_bps = r
            for ch in f.path:
                per_channel[id(ch)] = per_channel.get(id(ch), 0.0) + r
                chan_by_id[id(ch)] = ch
        # Channels that lost their last flow need zeroing too: sync all
        # channels we know about from the previous allocation.
        for ln in self.network.links:
            for ch in ln.channels():
                new_rate = per_channel.get(id(ch), 0.0)
                if ch.rate_sum != new_rate:
                    ch.sync(now)
                    ch.rate_sum = new_rate

        # Re-schedule completion events for finite transfers.
        for f in flows:
            if f.bytes_remaining is None:
                continue
            if f._completion_timer is not None:
                f._completion_timer.cancel()
                f._completion_timer = None
            if f.bytes_remaining <= 0:
                self.network.engine.after(0.0, lambda f=f: self._complete(f))
            elif f.rate_bps > 0:
                eta = f.bytes_remaining * BITS_PER_BYTE / f.rate_bps
                f._completion_timer = self.network.engine.after(
                    eta, lambda f=f: self._complete(f)
                )

    def _complete(self, flow: Flow) -> None:
        if not flow.active:
            return
        self._settle(flow)
        if flow.bytes_remaining is not None and flow.bytes_remaining > 1e-6:
            return  # a reallocation slowed it down; a newer timer exists
        cb = flow.on_complete
        self.stop_flow(flow)
        if cb is not None:
            cb(flow)


def max_min_allocation(
    paths: "list[list[Channel]]", demands: list[float]
) -> list[float]:
    """Max-min fair rates for flows over shared channels.

    Progressive filling: all unfrozen flows share one water level; at
    each step the next binding constraint is either a flow demand or a
    channel capacity.  Runs in O(iterations × flows × path length); the
    iteration count is bounded by flows + channels.

    Zero-length paths (src == dst within one node) get their full demand.
    """
    n = len(paths)
    if n == 0:
        return []
    rates = [0.0] * n
    frozen = [False] * n

    # channel id -> (capacity, list of flow indices)
    chan_cap: dict[int, float] = {}
    chan_flows: dict[int, list[int]] = {}
    for i, path in enumerate(paths):
        if not path:
            rates[i] = demands[i] if math.isfinite(demands[i]) else math.inf
            frozen[i] = True
            continue
        for ch in path:
            if id(ch) not in chan_cap:
                chan_cap[id(ch)] = ch.capacity_bps
                chan_flows[id(ch)] = []
            chan_flows[id(ch)].append(i)

    level = 0.0
    rounds = 0
    for _ in range(n + len(chan_cap) + 1):
        unfrozen = [i for i in range(n) if not frozen[i]]
        if not unfrozen:
            break
        rounds += 1
        # Next demand bind.
        delta_demand = math.inf
        for i in unfrozen:
            d = demands[i] - level
            if d < delta_demand:
                delta_demand = d
        # Next capacity bind.
        delta_cap = math.inf
        for cid, members in chan_flows.items():
            active = [i for i in members if not frozen[i]]
            if not active:
                continue
            frozen_load = sum(rates[i] for i in members if frozen[i])
            residual = chan_cap[cid] - frozen_load - level * len(active)
            d = residual / len(active)
            if d < delta_cap:
                delta_cap = d
        delta = min(delta_demand, delta_cap)
        if not math.isfinite(delta):
            # Only infinite demands remain and no capacity binds: the
            # paths must be capacity-free (impossible for real links).
            for i in unfrozen:
                rates[i] = math.inf
                frozen[i] = True
            break
        delta = max(delta, 0.0)
        level += delta
        # Freeze at binding constraints.
        for i in unfrozen:
            if demands[i] - level <= 1e-12:
                rates[i] = demands[i]
                frozen[i] = True
        for cid, members in chan_flows.items():
            active = [i for i in members if not frozen[i]]
            if not active:
                continue
            frozen_load = sum(rates[i] for i in members if frozen[i])
            residual = chan_cap[cid] - frozen_load - level * len(active)
            if residual / len(active) <= 1e-12:
                for i in active:
                    rates[i] = level
                    frozen[i] = True
    for i in range(n):
        if not frozen[i]:
            rates[i] = min(level, demands[i])
    obs.histogram("netsim.maxmin.rounds").observe(rounds)
    return rates
