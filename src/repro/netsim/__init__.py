"""Discrete-event network simulation substrate.

The ground-truth world the Remos collectors observe: an event engine,
device/link topology with per-interface octet counters, L3 routing, L2
spanning trees with forwarding databases, max-min fair fluid flows, and
traffic generators.
"""

from repro.netsim.address import IPv4Address, IPv4Network, MacAddress
from repro.netsim.engine import Engine, Timer
from repro.netsim.topology import (
    Channel,
    Host,
    Hub,
    Interface,
    Link,
    Network,
    Node,
    Router,
    Switch,
)
from repro.netsim.flows import Flow, FlowManager, max_min_allocation
from repro.netsim.paths import compute_path, path_capacity, path_latency
from repro.netsim.traffic import (
    BurstTraffic,
    CbrTraffic,
    FileTransfer,
    ParetoOnOffTraffic,
    RandomWalkTraffic,
)
from repro.netsim.builders import (
    Campus,
    Dumbbell,
    HubLan,
    Site,
    SiteSpec,
    SwitchedLan,
    WanWorld,
    WirelessLan,
    build_campus,
    build_dumbbell,
    build_hub_lan,
    build_multisite_wan,
    build_switched_lan,
    build_wireless_lan,
)
from repro.netsim.failures import fail_link, repair_link
from repro.netsim.mobility import rehome_host

__all__ = [
    "IPv4Address",
    "IPv4Network",
    "MacAddress",
    "Engine",
    "Timer",
    "Channel",
    "Host",
    "Hub",
    "Interface",
    "Link",
    "Network",
    "Node",
    "Router",
    "Switch",
    "Flow",
    "FlowManager",
    "max_min_allocation",
    "compute_path",
    "path_capacity",
    "path_latency",
    "BurstTraffic",
    "CbrTraffic",
    "FileTransfer",
    "ParetoOnOffTraffic",
    "RandomWalkTraffic",
    "Campus",
    "Dumbbell",
    "HubLan",
    "Site",
    "SiteSpec",
    "SwitchedLan",
    "WanWorld",
    "WirelessLan",
    "build_campus",
    "build_dumbbell",
    "build_hub_lan",
    "build_multisite_wan",
    "build_switched_lan",
    "build_wireless_lan",
    "fail_link",
    "repair_link",
    "rehome_host",
]
