"""Canonical topology builders for experiments and tests.

Each builder returns the :class:`~repro.netsim.topology.Network` plus a
small record of the interesting pieces, already frozen (routing tables,
spanning trees and FDBs computed).  Conventions: site ``i`` gets subnet
``10.<i>.0.0/16``; router-to-router transit prefixes come from
``192.168.<k>.0/30``; switches receive management IPs inside their LAN
subnet so SNMP can reach them.

Builders provided:

* :func:`build_dumbbell` — two hosts separated by two routers (the
  paper's private testbed for the SNMP-accuracy runs, Figs. 4–5).
* :func:`build_switched_lan` — a large bridged LAN: a tree of switches,
  hosts on the leaves, one edge router (the CMU SCS network of Fig. 3).
* :func:`build_hub_lan` — hosts sharing a hub (shared Ethernet →
  virtual switch in discovered topologies).
* :func:`build_multisite_wan` — N sites, each a small LAN behind an
  edge router, joined through a WAN core (mirror/video experiments,
  Figs. 8–11, Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.units import MBPS
from repro.netsim.address import IPv4Address
from repro.netsim.topology import Host, Hub, Network, Router, Switch


@dataclass
class Dumbbell:
    net: Network
    h1: Host
    h2: Host
    r1: Router
    r2: Router


def build_dumbbell(
    endpoint_bps: float = 100 * MBPS,
    middle_bps: float = 100 * MBPS,
    latency_s: float = 0.0005,
) -> Dumbbell:
    """``h1 -- r1 -- r2 -- h2`` with separate subnets at each stage."""
    net = Network()
    h1 = net.add_host("h1")
    h2 = net.add_host("h2")
    r1 = net.add_router("r1")
    r2 = net.add_router("r2")
    l1 = net.link(h1, r1, endpoint_bps, latency_s)
    lm = net.link(r1, r2, middle_bps, latency_s)
    l2 = net.link(r2, h2, endpoint_bps, latency_s)
    net.assign_ip(l1.a, "10.1.0.10", "10.1.0.0/24")
    net.assign_ip(l1.b, "10.1.0.1", "10.1.0.0/24")
    net.assign_ip(lm.a, "192.168.0.1", "192.168.0.0/30")
    net.assign_ip(lm.b, "192.168.0.2", "192.168.0.0/30")
    net.assign_ip(l2.a, "10.2.0.1", "10.2.0.0/24")
    net.assign_ip(l2.b, "10.2.0.10", "10.2.0.0/24")
    net.freeze()
    return Dumbbell(net, h1, h2, r1, r2)


@dataclass
class SwitchedLan:
    net: Network
    router: Router
    root_switch: Switch
    switches: list[Switch]
    hosts: list[Host]
    subnet: str


def build_switched_lan(
    n_hosts: int,
    fanout: int = 8,
    host_bps: float = 100 * MBPS,
    trunk_bps: float = 1000 * MBPS,
    uplink_bps: float = 155 * MBPS,
    subnet_octet: int = 1,
) -> SwitchedLan:
    """A bridged campus LAN: a ``fanout``-ary tree of switches with
    hosts on leaf switches, one edge router on the tree root.

    The number of switches is the smallest tree that gives every host a
    port: each leaf switch carries up to ``fanout`` hosts, interior
    switches carry up to ``fanout`` children.
    """
    if n_hosts < 1:
        raise ValueError("need at least one host")
    if fanout < 2:
        raise ValueError("fanout must be >= 2")
    net = Network()
    subnet = f"10.{subnet_octet}.0.0/16"

    n_leaves = -(-n_hosts // fanout)  # ceil
    # Build switch tree level by level, leaves last.
    levels: list[list[Switch]] = []
    width = n_leaves
    level_widths = [width]
    while width > 1:
        width = -(-width // fanout)
        level_widths.append(width)
    level_widths.reverse()  # root first
    sw_count = 0
    for w in level_widths:
        row = []
        for _ in range(w):
            row.append(net.add_switch(f"sw{sw_count}"))
            sw_count += 1
        levels.append(row)
    root = levels[0][0]
    for parent_row, child_row in zip(levels, levels[1:]):
        for j, child in enumerate(child_row):
            parent = parent_row[j // fanout]
            net.link(parent, child, trunk_bps)
    leaves = levels[-1]

    router = net.add_router("gw")
    uplink = net.link(router, root, uplink_bps)

    hosts: list[Host] = []
    for i in range(n_hosts):
        h = net.add_host(f"h{i}")
        leaf = leaves[i // fanout]
        ln = net.link(h, leaf, host_bps)
        net.assign_ip(ln.a, f"10.{subnet_octet}.{1 + i // 250}.{1 + i % 250}", subnet)
        hosts.append(h)

    net.assign_ip(uplink.a, f"10.{subnet_octet}.255.1", subnet)
    # Management IPs for switches: 10.x.254.<n>
    switches = [s for row in levels for s in row]
    for k, sw in enumerate(switches):
        mgmt = f"10.{subnet_octet}.254.{k + 1}"
        net.assign_ip(sw.interfaces[0], mgmt, subnet)
        sw.management_ip = sw.interfaces[0].ip

    net.freeze()
    return SwitchedLan(net, router, root, switches, hosts, subnet)


@dataclass
class HubLan:
    net: Network
    router: Router
    hub: Hub
    switch: Switch
    hosts: list[Host]
    subnet: str


def build_hub_lan(
    n_hub_hosts: int = 4,
    n_switch_hosts: int = 2,
    host_bps: float = 10 * MBPS,
    trunk_bps: float = 100 * MBPS,
) -> HubLan:
    """Hosts on a shared hub, the hub uplinked to a switch, plus hosts
    directly on the switch, and an edge router — exercises the
    virtual-switch representation for shared Ethernet."""
    net = Network()
    subnet = "10.9.0.0/24"
    router = net.add_router("gw")
    switch = net.add_switch("sw0")
    hub = net.add_hub("hub0")
    up = net.link(router, switch, trunk_bps)
    net.link(switch, hub, host_bps)
    hosts: list[Host] = []
    n = 0
    for i in range(n_hub_hosts):
        h = net.add_host(f"hub_h{i}")
        ln = net.link(h, hub, host_bps)
        net.assign_ip(ln.a, f"10.9.0.{10 + n}", subnet)
        hosts.append(h)
        n += 1
    for i in range(n_switch_hosts):
        h = net.add_host(f"sw_h{i}")
        ln = net.link(h, switch, trunk_bps)
        net.assign_ip(ln.a, f"10.9.0.{10 + n}", subnet)
        hosts.append(h)
        n += 1
    net.assign_ip(up.a, "10.9.0.1", subnet)
    net.assign_ip(switch.interfaces[0], "10.9.0.2", subnet)
    switch.management_ip = switch.interfaces[0].ip
    net.freeze()
    return HubLan(net, router, hub, switch, hosts, subnet)


@dataclass
class CampusSubnet:
    subnet: str
    gateway_ip: str
    switch: Switch
    hosts: list[Host]


@dataclass
class Campus:
    net: Network
    #: interior routers, one per subnet, joined by a backbone router
    backbone: Router
    routers: list[Router]
    subnets: list[CampusSubnet]

    def host(self, subnet_idx: int, host_idx: int = 0) -> Host:
        return self.subnets[subnet_idx].hosts[host_idx]


def build_campus(
    n_subnets: int = 3,
    hosts_per_subnet: int = 4,
    host_bps: float = 100 * MBPS,
    backbone_bps: float = 1000 * MBPS,
) -> Campus:
    """A multi-subnet campus: each subnet is a small switched LAN
    behind its own router; routers star onto a backbone router.

    This is the "IP domain corresponding to a university or
    department" an SNMP Collector is assigned to (§3.1.1): one
    collector, several routed subnets, several bridged segments.
    """
    if n_subnets < 1:
        raise ValueError("need at least one subnet")
    net = Network()
    backbone = net.add_router("bb")
    routers: list[Router] = []
    subnets: list[CampusSubnet] = []
    for i in range(n_subnets):
        subnet = f"10.{100 + i}.0.0/24"
        gw = net.add_router(f"r{i}")
        sw = net.add_switch(f"csw{i}")
        lan_link = net.link(gw, sw, backbone_bps)
        trunk = net.link(gw, backbone, backbone_bps)
        hosts: list[Host] = []
        for j in range(hosts_per_subnet):
            h = net.add_host(f"c{i}h{j}")
            ln = net.link(h, sw, host_bps)
            net.assign_ip(ln.a, f"10.{100 + i}.0.{10 + j}", subnet)
            hosts.append(h)
        net.assign_ip(lan_link.a, f"10.{100 + i}.0.1", subnet)
        net.assign_ip(sw.interfaces[0], f"10.{100 + i}.0.2", subnet)
        sw.management_ip = sw.interfaces[0].ip
        transit = f"192.168.{100 + i}.0/30"
        net.assign_ip(trunk.a, f"192.168.{100 + i}.1", transit)
        net.assign_ip(trunk.b, f"192.168.{100 + i}.2", transit)
        routers.append(gw)
        subnets.append(CampusSubnet(subnet, f"10.{100 + i}.0.1", sw, hosts))
    net.freeze()
    return Campus(net, backbone, routers, subnets)


@dataclass
class WirelessLan:
    net: Network
    router: Router
    switch: Switch
    basestations: list  # list[Basestation]
    wired_hosts: list[Host]
    wireless_hosts: list[Host]
    subnet: str


def build_wireless_lan(
    n_basestations: int = 3,
    n_wireless_hosts: int = 6,
    n_wired_hosts: int = 2,
    air_rate_bps: float = 11 * MBPS,
    trunk_bps: float = 100 * MBPS,
) -> WirelessLan:
    """An infrastructure WLAN: basestations on a distribution switch,
    wireless hosts spread round-robin across cells, a couple of wired
    hosts, and an edge router — the §6.2 mobile-host scenario.

    Wireless hosts can roam between cells with
    :func:`repro.netsim.wireless.associate`.
    """
    from repro.netsim.wireless import Basestation, add_basestation

    if n_basestations < 1:
        raise ValueError("need at least one basestation")
    net = Network()
    subnet = "10.77.0.0/16"
    router = net.add_router("gw")
    switch = net.add_switch("dsw")
    uplink = net.link(router, switch, trunk_bps)
    basestations: list[Basestation] = []
    for i in range(n_basestations):
        bs = add_basestation(net, f"ap{i}", switch, air_rate_bps)
        basestations.append(bs)
    wireless_hosts: list[Host] = []
    n = 0
    for i in range(n_wireless_hosts):
        h = net.add_host(f"wh{i}")
        bs = basestations[i % n_basestations]
        ln = net.link(h, bs, air_rate_bps)
        net.assign_ip(ln.a, f"10.77.0.{10 + n}", subnet)
        wireless_hosts.append(h)
        n += 1
    wired_hosts: list[Host] = []
    for i in range(n_wired_hosts):
        h = net.add_host(f"h{i}")
        ln = net.link(h, switch, trunk_bps)
        net.assign_ip(ln.a, f"10.77.0.{10 + n}", subnet)
        wired_hosts.append(h)
        n += 1
    net.assign_ip(uplink.a, "10.77.255.1", subnet)
    net.assign_ip(switch.interfaces[0], "10.77.254.1", subnet)
    switch.management_ip = switch.interfaces[0].ip
    for k, bs in enumerate(basestations):
        net.assign_ip(bs.interfaces[0], f"10.77.254.{10 + k}", subnet)
        bs.management_ip = bs.interfaces[0].ip
    net.freeze()
    return WirelessLan(
        net, router, switch, basestations, wired_hosts, wireless_hosts, subnet
    )


@dataclass
class SiteSpec:
    """One WAN site: a small LAN behind an edge router.

    ``access_bps`` is the capacity of the site's link into the WAN core
    — the usual bottleneck that gives each site its characteristic
    bandwidth (Table 1).
    """

    name: str
    access_bps: float
    n_hosts: int = 2
    lan_bps: float = 100 * MBPS
    access_latency_s: float = 0.02


@dataclass
class Site:
    spec: SiteSpec
    router: Router
    switch: Switch
    hosts: list[Host]
    subnet: str


@dataclass
class WanWorld:
    net: Network
    core: Router
    sites: dict[str, Site] = field(default_factory=dict)

    def host(self, site: str, idx: int = 0) -> Host:
        return self.sites[site].hosts[idx]


@dataclass
class SiteExtras:
    """Randomized structure a :func:`build_random_wan` site may carry."""

    #: second leaf switch under the site switch (mobility target), if any
    leaf_switch: Switch | None = None
    #: hosts homed on the leaf switch (subset of ``Site.hosts``)
    leaf_hosts: list[Host] = field(default_factory=list)
    #: basestations on the site switch (wireless cells), if any
    basestations: list = field(default_factory=list)
    #: wireless hosts associated to the basestations (not in ``Site.hosts``)
    wireless_hosts: list[Host] = field(default_factory=list)


@dataclass
class RandomWanWorld(WanWorld):
    """A :class:`WanWorld` grown by :func:`build_random_wan`."""

    cores: list[Router] = field(default_factory=list)
    extras: dict[str, SiteExtras] = field(default_factory=dict)
    seed: int = 0


def build_random_wan(
    n_sites: int,
    seed: int = 0,
    hosts_per_site: tuple[int, int] = (2, 4),
    multi_switch_fraction: float = 0.0,
    wireless_fraction: float = 0.0,
    n_cores: int | None = None,
    core_bps: float = 2488 * MBPS,
) -> RandomWanWorld:
    """A seeded random WAN at the scale the paper never reached.

    Hundreds to thousands of sites, each a small LAN behind an edge
    router with a randomized host count, access capacity and latency;
    sites attach to a ring of core routers.  Fractions of sites carry a
    second leaf switch (:mod:`repro.netsim.mobility` re-homing targets)
    or a basestation cell with wireless hosts
    (:mod:`repro.netsim.wireless` roaming targets).  Deterministic: the
    same seed grows the identical world, down to names and addresses.

    Addressing (``build_multisite_wan``'s scheme caps out near 250
    sites): site ``i`` gets ``10.<1 + i//200>.<i%200>.0/24``; access
    transits allocate /30s from ``172.16.0.0/12`` and the core ring
    from ``172.31.0.0/16``, so the space holds tens of thousands of
    sites without octet collisions.
    """
    if n_sites < 1:
        raise ValueError("need at least one site")
    if n_sites > 49_999:
        raise ValueError("site addressing supports at most 49999 sites")
    lo, hi = hosts_per_site
    if not 1 <= lo <= hi:
        raise ValueError("bad hosts_per_site range")
    from repro.common.rng import make_rng

    rng = make_rng(seed)
    net = Network()
    if n_cores is None:
        n_cores = max(1, min(8, n_sites // 32))
    cores = [net.add_router(f"core{k}") for k in range(n_cores)]
    # core ring (a single core needs no ring links)
    for k in range(len(cores) if n_cores > 1 else 0):
        nxt = cores[(k + 1) % n_cores]
        ln = net.link(cores[k], nxt, core_bps, 0.002)
        base = 0xAC1F0000 + k * 4  # 172.31.0.0 + k*4, /30 per ring hop
        transit = f"{IPv4Address(base)}/30"
        net.assign_ip(ln.a, str(IPv4Address(base + 1)), transit)
        net.assign_ip(ln.b, str(IPv4Address(base + 2)), transit)

    world = RandomWanWorld(net, cores[0], cores=cores, seed=seed)
    access_tiers = [1.5 * MBPS, 10 * MBPS, 45 * MBPS, 100 * MBPS]
    for i in range(n_sites):
        name = f"site{i:04d}"
        subnet = f"10.{1 + i // 200}.{i % 200}.0/24"
        prefix = subnet[: subnet.rindex(".0/24")]
        n_hosts = int(rng.integers(lo, hi + 1))
        access_bps = float(access_tiers[int(rng.integers(len(access_tiers)))])
        latency_s = float(rng.uniform(0.005, 0.05))
        spec = SiteSpec(name, access_bps, n_hosts, access_latency_s=latency_s)
        router = net.add_router(f"{name}-gw")
        switch = net.add_switch(f"{name}-sw")
        lan_link = net.link(router, switch, spec.lan_bps)
        core = cores[int(rng.integers(n_cores))]
        access = net.link(router, core, access_bps, latency_s)
        extras = SiteExtras()
        hosts: list[Host] = []
        next_addr = 10
        for j in range(n_hosts):
            h = net.add_host(f"{name}-h{j}")
            ln = net.link(h, switch, spec.lan_bps)
            net.assign_ip(ln.a, f"{prefix}.{next_addr}", subnet)
            next_addr += 1
            hosts.append(h)
        if float(rng.random()) < multi_switch_fraction:
            leaf = net.add_switch(f"{name}-leaf")
            net.link(switch, leaf, spec.lan_bps)
            net.assign_ip(leaf.interfaces[0], f"{prefix}.3", subnet)
            leaf.management_ip = leaf.interfaces[0].ip
            extras.leaf_switch = leaf
            for j in range(int(rng.integers(1, 3))):
                h = net.add_host(f"{name}-lh{j}")
                ln = net.link(h, leaf, spec.lan_bps)
                net.assign_ip(ln.a, f"{prefix}.{next_addr}", subnet)
                next_addr += 1
                hosts.append(h)
                extras.leaf_hosts.append(h)
        if float(rng.random()) < wireless_fraction:
            from repro.netsim.wireless import add_basestation

            for b in range(2):
                bs = add_basestation(net, f"{name}-ap{b}", switch, 11 * MBPS)
                net.assign_ip(bs.interfaces[0], f"{prefix}.{4 + b}", subnet)
                bs.management_ip = bs.interfaces[0].ip
                extras.basestations.append(bs)
            for j in range(int(rng.integers(1, 3))):
                h = net.add_host(f"{name}-wh{j}")
                bs = extras.basestations[j % len(extras.basestations)]
                ln = net.link(h, bs, 11 * MBPS)
                net.assign_ip(ln.a, f"{prefix}.{next_addr}", subnet)
                next_addr += 1
                extras.wireless_hosts.append(h)
        net.assign_ip(lan_link.a, f"{prefix}.1", subnet)
        net.assign_ip(switch.interfaces[0], f"{prefix}.2", subnet)
        switch.management_ip = switch.interfaces[0].ip
        base = 0xAC100000 + i * 4  # 172.16.0.0 + i*4, /30 per access link
        transit = f"{IPv4Address(base)}/30"
        net.assign_ip(access.a, str(IPv4Address(base + 1)), transit)
        net.assign_ip(access.b, str(IPv4Address(base + 2)), transit)
        world.sites[name] = Site(spec, router, switch, hosts, subnet)
        world.extras[name] = extras
    net.freeze()
    return world


def build_multisite_wan(specs: list[SiteSpec]) -> WanWorld:
    """N sites star-connected through one WAN core router.

    Every site's LAN is one subnet (``10.<i+10>.0.0/16``); its access
    link to the core uses a /30 transit prefix.  The star keeps paths
    two access links long — site A to site B always crosses both
    access bottlenecks, like the paper's CMU-to-Europe paths.
    """
    if not specs:
        raise ValueError("need at least one site")
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ValueError("site names must be unique")
    net = Network()
    core = net.add_router("core")
    world = WanWorld(net, core)
    for i, spec in enumerate(specs):
        octet = i + 10
        subnet = f"10.{octet}.0.0/16"
        router = net.add_router(f"{spec.name}-gw")
        switch = net.add_switch(f"{spec.name}-sw")
        lan_link = net.link(router, switch, spec.lan_bps)
        access = net.link(router, core, spec.access_bps, spec.access_latency_s)
        hosts: list[Host] = []
        for j in range(spec.n_hosts):
            h = net.add_host(f"{spec.name}-h{j}")
            ln = net.link(h, switch, spec.lan_bps)
            net.assign_ip(ln.a, f"10.{octet}.0.{10 + j}", subnet)
            hosts.append(h)
        net.assign_ip(lan_link.a, f"10.{octet}.0.1", subnet)
        net.assign_ip(switch.interfaces[0], f"10.{octet}.0.2", subnet)
        switch.management_ip = switch.interfaces[0].ip
        transit = f"192.168.{i + 1}.0/30"
        net.assign_ip(access.a, f"192.168.{i + 1}.1", transit)
        net.assign_ip(access.b, f"192.168.{i + 1}.2", transit)
        world.sites[spec.name] = Site(spec, router, switch, hosts, subnet)
    net.freeze()
    return world
