"""Link failure and repair with control-plane reconvergence.

§6.2: "Remos currently assumes a fairly static environment, so network
failures ... can confuse Remos."  This module provides the failures:
take a link down (tearing the flows that crossed it), let routing and
spanning trees reconverge on the survivors, and bring it back later.

The *simulated network* reconverges immediately (routers and switches
do that on their own); the *monitoring system* only catches up when its
agents are refreshed and its caches flushed — which is exactly the
confusion window the paper describes, and what the robustness tests
measure.
"""

from __future__ import annotations

from repro.common.errors import TopologyError
from repro.netsim import bridging, routing
from repro.netsim.flows import Flow
from repro.netsim.topology import Link, Network


def fail_link(net: Network, link: Link) -> list[Flow]:
    """Take a link down; returns the flows it tore.

    The link object survives (counters keep their values, as real
    interface counters do across carrier loss); it simply stops
    carrying traffic and disappears from forwarding until
    :func:`repair_link`.
    """
    if link not in net.links:
        raise TopologyError("link is not up")
    broken: list[Flow] = []
    channels = set(link.channels())
    for flow in list(net.flows.active_flows()):
        if channels & set(flow.path):
            net.flows.stop_flow(flow)
            broken.append(flow)
    # sync counters to the failure instant before traffic ceases
    for ch in link.channels():
        ch.sync(net.now)
    net.links.remove(link)
    link.a.link = None
    link.b.link = None
    _reconverge(net)
    return broken


def repair_link(net: Network, link: Link) -> None:
    """Bring a previously failed link back (idempotent)."""
    if link in net.links:
        return
    if link.a.link is not None or link.b.link is not None:
        raise TopologyError("an endpoint has been re-wired; cannot repair")
    # counters resume from their pre-failure values
    for ch in link.channels():
        ch.sync(net.now)
    link.a.link = link
    link.b.link = link
    net.links.append(link)
    _reconverge(net)


def _reconverge(net: Network) -> None:
    """Recompute routing tables, spanning trees, and FDBs."""
    for router in net.routers():
        router.routes = []
    routing.build_routing_tables(net)
    bridging.run_spanning_tree(net)
    bridging.populate_fdbs(net)
