"""L3 route computation.

Builds per-router forwarding tables (longest-prefix match entries) from
shortest paths over the router adjacency graph, and assigns default
gateways to hosts.  The SNMP Collector later *re-discovers* paths by
walking these tables hop-by-hop over SNMP, so consistency between the
tables and the fluid-flow forwarding in :mod:`repro.netsim.paths` is by
construction: both consult the same entries.
"""

from __future__ import annotations

from collections import defaultdict
from itertools import combinations

import networkx as nx

from repro.common.errors import TopologyError
from repro.netsim.address import IPv4Address, IPv4Network
from repro.netsim.topology import Host, Interface, Network, Router


def _router_attachments(net: Network) -> dict[IPv4Network, list[tuple[Router, Interface]]]:
    """Map each IP subnet to the router interfaces attached to it.

    Interfaces without a live link are skipped: a downed port withdraws
    its connected route and every adjacency through it (link-state
    routing semantics; interior L2 failures on multi-switch segments
    are beyond what this static recomputation models).
    """
    attach: dict[IPv4Network, list[tuple[Router, Interface]]] = defaultdict(list)
    for r in net.routers():
        for i in r.interfaces:
            if i.network is not None and i.ip is not None and i.link is not None:
                attach[i.network].append((r, i))
    return attach


def _adjacency_graph(
    attach: dict[IPv4Network, list[tuple[Router, Interface]]],
) -> nx.Graph:
    """Routers are L3-adjacent when they share a subnet.

    Edge data records, per direction, the egress interface and the peer
    address to use as next hop (the first shared subnet wins; parallel
    subnets between the same router pair are redundant for shortest
    paths with unit weights).
    """
    g = nx.Graph()
    for subnet, members in attach.items():
        for (r1, i1), (r2, i2) in combinations(members, 2):
            if r1 is r2:
                continue
            if g.has_edge(r1.name, r2.name):
                continue
            g.add_edge(
                r1.name,
                r2.name,
                weight=1.0,
                via={r1.name: (i1, i2.ip), r2.name: (i2, i1.ip)},
                subnet=subnet,
            )
    return g


def build_routing_tables(net: Network) -> None:
    """Populate ``Router.routes`` for every router and host gateways."""
    attach = _router_attachments(net)
    routers = net.routers()
    g = _adjacency_graph(attach)
    for r in routers:
        g.add_node(r.name)

    # All destinations a route must exist for: every subnet seen on any
    # interface (router or host).
    all_subnets: set[IPv4Network] = set(attach)
    for node in net.nodes.values():
        for i in node.interfaces:
            if i.network is not None:
                all_subnets.add(i.network)

    # Subnet -> routers directly attached, for nearest-attachment search.
    attached_routers: dict[IPv4Network, list[Router]] = {
        s: sorted({r for r, _ in members}, key=lambda r: r.name)
        for s, members in attach.items()
    }

    for r in routers:
        r.routes = []
        # Direct routes first (only on interfaces that are up).
        direct: set[IPv4Network] = set()
        for i in r.interfaces:
            if i.network is not None and i.link is not None:
                r.routes.append((i.network, None, i))
                direct.add(i.network)

        dist, path = nx.single_source_dijkstra(g, r.name)
        for subnet in sorted(all_subnets):
            if subnet in direct:
                continue
            targets = attached_routers.get(subnet, [])
            best: tuple[float, str] | None = None
            for t in targets:
                if t.name in dist:
                    cand = (dist[t.name], t.name)
                    if best is None or cand < best:
                        best = cand
            if best is None:
                continue  # unreachable subnet: no route (packets would drop)
            hop_path = path[best[1]]
            if len(hop_path) < 2:
                continue  # shouldn't happen: direct handled above
            next_name = hop_path[1]
            via = g.edges[r.name, next_name]["via"][r.name]
            out_iface, next_ip = via
            r.routes.append((subnet, next_ip, out_iface))

    _assign_gateways(net, attach)


def _assign_gateways(
    net: Network, attach: dict[IPv4Network, list[tuple[Router, Interface]]]
) -> None:
    """Give every host without an explicit gateway the first router on
    its subnet (deterministic by router name)."""
    for host in net.hosts():
        if host.gateway_ip is not None:
            continue
        for i in host.interfaces:
            if i.network is None:
                continue
            members = attach.get(i.network, [])
            if members:
                best = min(members, key=lambda m: m[0].name)
                host.gateway_ip = best[1].ip
                break


def resolve_l3_next_hop(
    net: Network, current: Host | Router, dst_ip: IPv4Address
) -> tuple[Interface, Interface]:
    """One L3 forwarding decision: (egress interface, next-hop interface).

    For hosts: deliver on-link if the destination shares a subnet,
    otherwise send to the default gateway.  For routers: longest prefix
    match in the forwarding table.  The next-hop interface is the
    device interface owning the next-hop IP (or the destination's own
    interface for direct delivery).
    """
    if isinstance(current, Host):
        for i in current.interfaces:
            if i.network is not None and dst_ip in i.network:
                target = net.iface_for_ip(dst_ip)
                if target is None:
                    raise TopologyError(f"no interface owns {dst_ip}")
                return i, target
        if current.gateway_ip is None:
            raise TopologyError(f"host {current.name} has no gateway for {dst_ip}")
        gw_iface = net.iface_for_ip(current.gateway_ip)
        if gw_iface is None:
            raise TopologyError(f"gateway {current.gateway_ip} does not exist")
        if not current.interfaces:
            raise TopologyError(f"host {current.name} has no interfaces")
        out = next(
            (i for i in current.interfaces if i.network is not None and current.gateway_ip in i.network),
            current.interfaces[0],
        )
        return out, gw_iface

    entry = current.lookup_route(dst_ip)
    if entry is None:
        raise TopologyError(f"router {current.name} has no route to {dst_ip}")
    prefix, next_ip, out_iface = entry
    if next_ip is None:  # directly attached: deliver to the owner
        target = net.iface_for_ip(dst_ip)
        if target is None:
            raise TopologyError(f"no interface owns {dst_ip}")
        return out_iface, target
    hop_iface = net.iface_for_ip(next_ip)
    if hop_iface is None:
        raise TopologyError(f"next hop {next_ip} does not exist")
    return out_iface, hop_iface
