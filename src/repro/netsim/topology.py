"""Network element model: hosts, routers, switches, hubs, links.

This is the ground-truth world the collectors observe.  Devices own
:class:`Interface` objects; a :class:`Link` joins exactly two interfaces
and carries two directed :class:`Channel` s (one per direction), each
with its own capacity, octet counter, and set of fluid flows.

The :class:`Network` container ties the pieces to a simulation
:class:`~repro.netsim.engine.Engine` and hands out addresses.  After
construction, call :meth:`Network.freeze` to compute routing tables,
spanning trees and forwarding databases (see :mod:`repro.netsim.routing`
and :mod:`repro.netsim.bridging`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

from repro.common.errors import TopologyError
from repro.common.units import BITS_PER_BYTE
from repro.netsim.address import (
    IPv4Address,
    IPv4Network,
    MacAddress,
    MacAllocator,
)
from repro.netsim.engine import Engine

if TYPE_CHECKING:  # circular at runtime
    from repro.netsim.flows import Flow, FlowManager


class Channel:
    """One direction of a link: capacity, flows, and an octet counter.

    The byte counter is integrated lazily: ``sync(now)`` folds in the
    traffic carried at the current aggregate rate since the previous
    sync.  Rate changes must therefore sync *before* mutating
    ``rate_sum`` — the :class:`~repro.netsim.flows.FlowManager` enforces
    this ordering.
    """

    __slots__ = ("link", "src", "dst", "capacity_bps", "rate_sum", "bytes_total", "_last_sync")

    def __init__(self, link: "Link", src: "Interface", dst: "Interface", capacity_bps: float) -> None:
        self.link = link
        self.src = src
        self.dst = dst
        self.capacity_bps = capacity_bps
        #: aggregate allocated rate of all flows currently on this channel
        self.rate_sum = 0.0
        #: cumulative bytes carried (what ifOutOctets of ``src`` reports)
        self.bytes_total = 0.0
        self._last_sync = 0.0

    def sync(self, now: float) -> None:
        """Integrate the octet counter up to simulated time ``now``."""
        if now > self._last_sync:
            self.bytes_total += self.rate_sum * (now - self._last_sync) / BITS_PER_BYTE
            self._last_sync = now

    def utilization(self) -> float:
        """Instantaneous utilization in [0, 1]."""
        if self.capacity_bps <= 0:
            return 0.0
        return min(1.0, self.rate_sum / self.capacity_bps)

    def __repr__(self) -> str:
        return f"Channel({self.src.fqname}->{self.dst.fqname})"


class Interface:
    """A network interface on a device.

    Mirrors the observable MIB-II attributes: ``ifIndex`` (1-based per
    device), ``ifSpeed`` (bits/s, taken from the attached link), and the
    octet counters (delegated to the attached link's channels).
    """

    def __init__(self, device: "Node", name: str, index: int) -> None:
        self.device = device
        self.name = name
        self.index = index  # ifIndex, 1-based
        self.link: Link | None = None
        self.ip: IPv4Address | None = None
        self.network: IPv4Network | None = None
        self.mac: MacAddress | None = None

    @property
    def fqname(self) -> str:
        return f"{self.device.name}.{self.name}"

    @property
    def speed_bps(self) -> float:
        """ifSpeed: the capacity of the attached link (0 if unattached)."""
        return self.link.capacity_bps if self.link is not None else 0.0

    def tx_channel(self) -> Channel | None:
        """The directed channel this interface transmits on."""
        if self.link is None:
            return None
        return self.link.channel_from(self)

    def rx_channel(self) -> Channel | None:
        """The directed channel this interface receives on."""
        if self.link is None:
            return None
        return self.link.channel_to(self)

    def out_octets(self, now: float) -> float:
        """ifOutOctets at simulated time ``now``."""
        ch = self.tx_channel()
        if ch is None:
            return 0.0
        ch.sync(now)
        return ch.bytes_total

    def in_octets(self, now: float) -> float:
        """ifInOctets at simulated time ``now``."""
        ch = self.rx_channel()
        if ch is None:
            return 0.0
        ch.sync(now)
        return ch.bytes_total

    def peer(self) -> "Interface | None":
        """The interface on the far side of the attached link."""
        if self.link is None:
            return None
        return self.link.other(self)

    def __repr__(self) -> str:
        ip = f" ip={self.ip}" if self.ip else ""
        return f"Interface({self.fqname}{ip})"


class Link:
    """A full-duplex point-to-point link between two interfaces."""

    def __init__(
        self,
        a: Interface,
        b: Interface,
        capacity_bps: float,
        latency_s: float = 0.0005,
    ) -> None:
        if a.link is not None or b.link is not None:
            raise TopologyError(f"interface already linked: {a.fqname if a.link else b.fqname}")
        if capacity_bps <= 0:
            raise TopologyError("link capacity must be positive")
        self.a = a
        self.b = b
        self.capacity_bps = capacity_bps
        self.latency_s = latency_s
        self._ab = Channel(self, a, b, capacity_bps)
        self._ba = Channel(self, b, a, capacity_bps)
        a.link = self
        b.link = self

    def channel_from(self, iface: Interface) -> Channel:
        if iface is self.a:
            return self._ab
        if iface is self.b:
            return self._ba
        raise TopologyError(f"{iface.fqname} is not on {self!r}")

    def channel_to(self, iface: Interface) -> Channel:
        if iface is self.a:
            return self._ba
        if iface is self.b:
            return self._ab
        raise TopologyError(f"{iface.fqname} is not on {self!r}")

    def other(self, iface: Interface) -> Interface:
        if iface is self.a:
            return self.b
        if iface is self.b:
            return self.a
        raise TopologyError(f"{iface.fqname} is not on {self!r}")

    def channels(self) -> tuple[Channel, Channel]:
        return (self._ab, self._ba)

    def __repr__(self) -> str:
        return f"Link({self.a.fqname}<->{self.b.fqname})"


class Node:
    """Base class for all devices."""

    kind = "node"

    def __init__(self, network: "Network", name: str) -> None:
        self.network = network
        self.name = name
        self.interfaces: list[Interface] = []

    def add_interface(self, name: str | None = None) -> Interface:
        idx = len(self.interfaces) + 1
        iface = Interface(self, name or f"eth{idx - 1}", idx)
        iface.mac = self.network.macs.allocate()
        self.interfaces.append(iface)
        self.network._register_mac(iface)
        return iface

    def iface(self, index: int) -> Interface:
        """Interface by 1-based ifIndex."""
        return self.interfaces[index - 1]

    def neighbors(self) -> Iterator["Node"]:
        for i in self.interfaces:
            p = i.peer()
            if p is not None:
                yield p.device

    def ips(self) -> list[IPv4Address]:
        return [i.ip for i in self.interfaces if i.ip is not None]

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class Host(Node):
    """An end host: usually one interface, a default gateway, and a load.

    ``load_source`` is an optional callable ``f(now) -> float`` giving
    the host's CPU load average, sampled by RPS host-load sensors.
    """

    kind = "host"

    def __init__(self, network: "Network", name: str) -> None:
        super().__init__(network, name)
        self.gateway_ip: IPv4Address | None = None
        self.load_source: Callable[[float], float] | None = None

    @property
    def ip(self) -> IPv4Address:
        for i in self.interfaces:
            if i.ip is not None:
                return i.ip
        raise TopologyError(f"host {self.name} has no IP address")

    def load(self, now: float) -> float:
        """Current load average (0.0 if no load source attached)."""
        if self.load_source is None:
            return 0.0
        return float(self.load_source(now))


class Router(Node):
    """An L3 router.  The forwarding table is built by ``Network.freeze``.

    ``snmp_reachable`` models administrative reach: the paper's SNMP
    Collector can only talk to agents inside its own domain, and some
    devices simply refuse SNMP — those become virtual switches in the
    discovered topology.
    """

    kind = "router"

    def __init__(self, network: "Network", name: str) -> None:
        super().__init__(network, name)
        #: list of (prefix, next_hop_ip or None for direct, out Interface)
        self.routes: list[tuple[IPv4Network, IPv4Address | None, Interface]] = []
        self.snmp_reachable = True
        #: whether the agent implements the RFC 2096 ipCidrRouteTable
        #: (old gear only has the classic ipRouteTable)
        self.supports_cidr_mib = True

    def lookup_route(self, dst: IPv4Address) -> tuple[IPv4Network, IPv4Address | None, Interface] | None:
        """Longest-prefix-match forwarding decision for ``dst``."""
        best = None
        for entry in self.routes:
            prefix = entry[0]
            if dst in prefix and (best is None or prefix.prefixlen > best[0].prefixlen):
                best = entry
        return best


class Switch(Node):
    """An L2 learning bridge.

    The forwarding database maps MAC -> port (ifIndex); entries exist
    for every station the spanning tree can reach once the network is
    frozen, mimicking a bridge that has seen traffic from everyone
    (the Bridge-MIB dot1dTpFdbTable view).  ``bridge_id`` orders
    switches for spanning tree election.
    """

    kind = "switch"

    def __init__(self, network: "Network", name: str, bridge_priority: int = 32768) -> None:
        super().__init__(network, name)
        self.bridge_priority = bridge_priority
        #: MAC -> ifIndex of the port leading toward that MAC
        self.fdb: dict[MacAddress, int] = {}
        #: set of ifIndex values blocked by spanning tree
        self.blocked_ports: set[int] = set()
        self.snmp_reachable = True
        #: management address assigned on the segment (switches answer SNMP)
        self.management_ip: IPv4Address | None = None

    @property
    def bridge_id(self) -> tuple[int, int]:
        mac = self.interfaces[0].mac if self.interfaces else None
        return (self.bridge_priority, mac.value if mac else 0)

    def management_mac(self) -> MacAddress:
        """The MAC this switch sources management traffic from."""
        if not self.interfaces:
            raise TopologyError(f"switch {self.name} has no interfaces")
        return self.interfaces[0].mac  # type: ignore[return-value]


class Hub(Node):
    """A shared Ethernet segment (repeater).

    Hubs forward on all ports and have no FDB and no SNMP agent; the
    collectors represent them as *virtual switches* in discovered
    topologies, exactly as the paper describes for shared Ethernet.
    """

    kind = "hub"


class Network:
    """Container for one simulated internetwork.

    Construction protocol::

        net = Network(Engine())
        r = net.add_router("r1")
        h = net.add_host("h1")
        ... net.link(...) / net.assign_subnet(...) ...
        net.freeze()        # routing tables, spanning tree, FDBs
    """

    def __init__(self, engine: Engine | None = None) -> None:
        self.engine = engine or Engine()
        self.nodes: dict[str, Node] = {}
        self.links: list[Link] = []
        self.macs = MacAllocator()
        self._mac_to_iface: dict[MacAddress, Interface] = {}
        self._ip_to_iface: dict[IPv4Address, Interface] = {}
        self._frozen = False
        #: installed FaultInjector, or None (see repro.faults); kept on
        #: the network so the SNMP client and benchmark collectors can
        #: consult it without new plumbing through every constructor
        self.faults = None
        from repro.netsim.flows import FlowManager  # deferred: circular import

        self.flows: FlowManager = FlowManager(self)

    # -- construction ---------------------------------------------------

    def _add_node(self, node: Node) -> None:
        if self._frozen:
            raise TopologyError("network is frozen")
        if node.name in self.nodes:
            raise TopologyError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node

    def add_host(self, name: str) -> Host:
        host = Host(self, name)
        self._add_node(host)
        return host

    def add_router(self, name: str) -> Router:
        router = Router(self, name)
        self._add_node(router)
        return router

    def add_switch(self, name: str, bridge_priority: int = 32768) -> Switch:
        sw = Switch(self, name, bridge_priority)
        self._add_node(sw)
        return sw

    def add_hub(self, name: str) -> Hub:
        hub = Hub(self, name)
        self._add_node(hub)
        return hub

    def link(
        self,
        a: Node | Interface,
        b: Node | Interface,
        capacity_bps: float,
        latency_s: float = 0.0005,
    ) -> Link:
        """Join two devices (fresh interfaces) or two explicit interfaces."""
        if self._frozen:
            raise TopologyError("network is frozen")
        ia = a if isinstance(a, Interface) else a.add_interface()
        ib = b if isinstance(b, Interface) else b.add_interface()
        ln = Link(ia, ib, capacity_bps, latency_s)
        self.links.append(ln)
        return ln

    def assign_ip(self, iface: Interface, ip: IPv4Address | str, network: IPv4Network | str) -> None:
        ip = IPv4Address(ip)
        network = IPv4Network(network)
        if ip not in network:
            raise TopologyError(f"{ip} not in {network}")
        if ip in self._ip_to_iface:
            raise TopologyError(f"duplicate IP {ip}")
        iface.ip = ip
        iface.network = network
        self._ip_to_iface[ip] = iface

    def _register_mac(self, iface: Interface) -> None:
        assert iface.mac is not None
        self._mac_to_iface[iface.mac] = iface

    # -- lookup ---------------------------------------------------------

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise TopologyError(f"no node named {name!r}") from None

    def host(self, name: str) -> Host:
        n = self.node(name)
        if not isinstance(n, Host):
            raise TopologyError(f"{name!r} is a {n.kind}, not a host")
        return n

    def iface_for_ip(self, ip: IPv4Address | str) -> Interface | None:
        return self._ip_to_iface.get(IPv4Address(ip))

    def node_for_ip(self, ip: IPv4Address | str) -> Node | None:
        iface = self.iface_for_ip(ip)
        return iface.device if iface is not None else None

    def iface_for_mac(self, mac: MacAddress) -> Interface | None:
        return self._mac_to_iface.get(mac)

    def addressed_interfaces(self) -> list[Interface]:
        """All interfaces that carry an IP address."""
        return [self._ip_to_iface[ip] for ip in sorted(self._ip_to_iface)]

    def hosts(self) -> list[Host]:
        return [n for n in self.nodes.values() if isinstance(n, Host)]

    def routers(self) -> list[Router]:
        return [n for n in self.nodes.values() if isinstance(n, Router)]

    def switches(self) -> list[Switch]:
        return [n for n in self.nodes.values() if isinstance(n, Switch)]

    @property
    def now(self) -> float:
        return self.engine.now

    # -- finalisation -----------------------------------------------------

    def freeze(self) -> None:
        """Compute routing tables, spanning trees, and bridge FDBs.

        Idempotent; must be called before starting traffic or querying
        paths.
        """
        from repro.netsim import bridging, routing  # deferred: circular import

        routing.build_routing_tables(self)
        bridging.run_spanning_tree(self)
        bridging.populate_fdbs(self)
        self._frozen = True

    @property
    def frozen(self) -> bool:
        return self._frozen
