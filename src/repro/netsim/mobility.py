"""Host mobility: re-homing a host to a different attachment point.

The paper's Bridge Collector "must monitor the location of nodes on the
network continuously" because "in wireless networks a mobile node may
move between basestations much more frequently" (§3.1.2).  This module
provides the ground-truth move: detach a host's link, re-attach it
elsewhere in the *same IP subnet* (L2 roaming — L3 mobility would need
readdressing), and recompute spanning trees and forwarding databases.

Flows traversing the old attachment are torn down, as a real handoff
breaks transport connections unless something like the dynamic-handoff
system of Karrer & Gross (paper ref [16]) re-establishes them; callers
get the broken flows back so they can model reconnection.
"""

from __future__ import annotations

from repro.common.errors import TopologyError
from repro.netsim import bridging
from repro.netsim.flows import Flow
from repro.netsim.topology import Host, Hub, Link, Network, Node, Switch


def rehome_host(
    net: Network,
    host: Host,
    new_attachment: Node,
    capacity_bps: float | None = None,
    latency_s: float = 0.0005,
) -> list[Flow]:
    """Move a single-homed host to a new switch/hub port.

    Returns the flows that were torn down by the move.  The host keeps
    its IP address, which must remain valid: the new attachment has to
    be in the same broadcast domain family (we verify post-move that
    the host can still reach its gateway's segment).
    """
    if len(host.interfaces) != 1 or host.interfaces[0].link is None:
        raise TopologyError(f"{host.name} is not a single-homed attached host")
    if not isinstance(new_attachment, (Switch, Hub)):
        raise TopologyError("hosts can only re-home onto switches or hubs")
    iface = host.interfaces[0]
    old_link = iface.link
    if old_link.other(iface).device is new_attachment:
        return []  # already there

    # Tear down flows crossing the old attachment.
    broken: list[Flow] = []
    old_channels = set(old_link.channels())
    for flow in list(net.flows.active_flows()):
        if old_channels & set(flow.path):
            net.flows.stop_flow(flow)
            broken.append(flow)

    # Detach: the old peer port stays on its device, but carries no link.
    cap = capacity_bps if capacity_bps is not None else old_link.capacity_bps
    peer = old_link.other(iface)
    iface.link = None
    peer.link = None
    net.links.remove(old_link)

    # Attach to a fresh port on the new device.
    was_frozen = net._frozen
    net._frozen = False
    try:
        net.link(iface, new_attachment.add_interface(), cap, latency_s)
    finally:
        net._frozen = was_frozen

    # Recompute L2 state; routing is untouched (same subnet).
    bridging.run_spanning_tree(net)
    bridging.populate_fdbs(net)

    # Sanity: the host must still reach its gateway at L2.
    if host.gateway_ip is not None:
        gw_iface = net.iface_for_ip(host.gateway_ip)
        if gw_iface is not None:
            try:
                bridging.l2_path(net, iface, gw_iface)
            except TopologyError:
                raise TopologyError(
                    f"re-homing {host.name} onto {new_attachment.name} "
                    f"disconnects it from its gateway"
                ) from None
    return broken
