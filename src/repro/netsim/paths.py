"""End-to-end path computation: L3 forwarding glued to L2 spanning trees.

``compute_path`` walks a packet's journey the way the network would
forward it: at each L3 hop consult the host default route or the
router's longest-prefix-match table (:mod:`repro.netsim.routing`), then
cross the subnet on the segment's spanning tree
(:mod:`repro.netsim.bridging`).  The result is the exact sequence of
directed channels a fluid flow occupies — the ground truth that SNMP
octet counters, and therefore everything the collectors see, derive
from.
"""

from __future__ import annotations

from repro.common.errors import TopologyError
from repro.netsim.address import IPv4Address
from repro.netsim.bridging import l2_path
from repro.netsim.routing import resolve_l3_next_hop
from repro.netsim.topology import Channel, Host, Network, Node, Router

#: Safety bound on L3 hops; trips on routing loops.
MAX_HOPS = 64


def compute_path(net: Network, src: Host | str, dst: Host | str) -> list[Channel]:
    """Directed channels traversed from ``src`` to ``dst``.

    Accepts host objects or host names.  Raises
    :class:`~repro.common.errors.TopologyError` on unreachable
    destinations or forwarding loops.
    """
    if isinstance(src, str):
        src = net.host(src)
    if isinstance(dst, str):
        dst = net.host(dst)
    if src is dst:
        return []
    dst_ip = dst.ip

    channels: list[Channel] = []
    current: Node = src
    for _ in range(MAX_HOPS):
        if current is dst:
            return channels
        if not isinstance(current, (Host, Router)):
            raise TopologyError(f"cannot forward from a {current.kind}")
        out_iface, hop_iface = resolve_l3_next_hop(net, current, dst_ip)
        channels.extend(l2_path(net, out_iface, hop_iface))
        current = hop_iface.device
    raise TopologyError(f"forwarding loop between {src.name} and {dst.name}")


def path_latency(channels: list[Channel]) -> float:
    """One-way propagation latency along a channel sequence."""
    return sum(ch.link.latency_s for ch in channels)


def path_capacity(channels: list[Channel]) -> float:
    """Raw bottleneck capacity along a channel sequence."""
    if not channels:
        return float("inf")
    return min(ch.capacity_bps for ch in channels)
