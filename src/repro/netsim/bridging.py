"""L2 segments, spanning tree, and bridge forwarding databases.

An *L2 segment* (broadcast domain) is a maximal set of interfaces
connected through switches and hubs only — hosts and routers terminate
segments.  Within each segment we elect a spanning tree (lowest
bridge-id root, shortest path, deterministic tie-breaks) and then fill
every switch's forwarding database with an entry per station MAC, the
steady-state view a learning bridge converges to and exposes through
the Bridge-MIB ``dot1dTpFdbTable``.

Switch management MACs are stations too: real switches source SNMP
replies, so their MACs appear in neighbouring bridges' FDBs.  The
Bridge Collector's topology inference relies on this, as does the
original (Lowekamp et al., SIGCOMM 2001) algorithm.
"""

from __future__ import annotations

from collections import defaultdict, deque

import networkx as nx

from repro.common.errors import TopologyError
from repro.netsim.address import MacAddress
from repro.netsim.topology import (
    Channel,
    Hub,
    Interface,
    Link,
    Network,
    Node,
    Switch,
)

#: FDB port value for a bridge's own (self) MAC entries.
SELF_PORT = 0


def _is_l2_forwarder(node: Node) -> bool:
    return isinstance(node, (Switch, Hub))


class Segment:
    """One broadcast domain: its links, forwarders, and attached stations."""

    def __init__(self, seg_id: int) -> None:
        self.id = seg_id
        self.links: list[Link] = []
        self.switches: list[Switch] = []
        self.hubs: list[Hub] = []
        #: host/router interfaces attached to this segment
        self.edge_ifaces: list[Interface] = []
        #: tree edges as a graph over attachment points (see _apoint)
        self.tree: nx.Graph = nx.Graph()

    def station_macs(self) -> dict[MacAddress, Interface]:
        """All MACs visible on this segment (stations + switch mgmt)."""
        macs: dict[MacAddress, Interface] = {}
        for iface in self.edge_ifaces:
            if iface.mac is not None:
                macs[iface.mac] = iface
        for sw in self.switches:
            macs[sw.management_mac()] = sw.interfaces[0]
        return macs


def _apoint(iface: Interface) -> object:
    """Attachment point for segment discovery.

    Switches and hubs forward among all their ports, so the device is
    one point; hosts and routers do not forward, so each of their
    interfaces is its own point.
    """
    if _is_l2_forwarder(iface.device):
        return iface.device
    return iface


def discover_segments(net: Network) -> list[Segment]:
    """Partition all links into L2 segments via union over attachment points."""
    g = nx.Graph()
    for ln in net.links:
        g.add_edge(_apoint(ln.a), _apoint(ln.b))
    segments: list[Segment] = []
    point_to_seg: dict[object, Segment] = {}
    for idx, comp in enumerate(sorted(nx.connected_components(g), key=lambda c: min(str(x) for x in c))):
        seg = Segment(idx)
        for point in comp:
            point_to_seg[point] = seg
        for point in comp:
            if isinstance(point, Switch):
                seg.switches.append(point)
            elif isinstance(point, Hub):
                seg.hubs.append(point)
            elif isinstance(point, Interface):
                seg.edge_ifaces.append(point)
        seg.switches.sort(key=lambda s: s.name)
        seg.hubs.sort(key=lambda h: h.name)
        seg.edge_ifaces.sort(key=lambda i: i.fqname)
        segments.append(seg)
    # Every link (including parallel ones a simple graph would collapse)
    # goes to the segment of its endpoints.
    for ln in net.links:
        point_to_seg[_apoint(ln.a)].links.append(ln)
    return segments


def run_spanning_tree(net: Network) -> list[Segment]:
    """Elect a spanning tree per segment; mark blocked switch ports.

    Redundant links between switches are pruned by removing the edge
    whose (cost, bridge-ids) sorts highest, approximating STP's
    designated-port election.  A loop that cannot be broken at a switch
    port (pure hub/host loop) is a construction error.
    """
    segments = discover_segments(net)
    blocked: set[int] = set()
    for seg in segments:
        g = nx.Graph()
        for ln in seg.links:
            pa, pb = _apoint(ln.a), _apoint(ln.b)
            if g.has_edge(pa, pb):
                # Parallel links: keep the first deterministically, block the rest.
                _block_link(ln, blocked)
                continue
            g.add_edge(pa, pb, link=ln)
        # Break remaining cycles: highest-id edges go first.
        while True:
            try:
                cycle = nx.find_cycle(g)
            except nx.NetworkXNoCycle:
                break
            worst = max(cycle, key=lambda e: _edge_sort_key(g.edges[e]["link"]))
            ln = g.edges[worst]["link"]
            _block_link(ln, blocked)
            g.remove_edge(*worst)
        seg.tree = g
        for sw in seg.switches:
            sw.blocked_ports = {
                i.index
                for i in sw.interfaces
                if i.link is not None and id(i.link) in blocked
            }
    net._segments = segments  # type: ignore[attr-defined]
    net._blocked_links = blocked  # type: ignore[attr-defined]
    return segments


def _block_link(ln: Link, blocked: set[int]) -> None:
    if not any(isinstance(end.device, Switch) for end in (ln.a, ln.b)):
        raise TopologyError(f"cannot break L2 loop at {ln!r}: no switch port to block")
    blocked.add(id(ln))


def _edge_sort_key(ln: Link) -> tuple:
    def bid(iface: Interface) -> tuple:
        dev = iface.device
        if isinstance(dev, Switch):
            return dev.bridge_id
        return (1 << 20, iface.mac.value if iface.mac else 0)

    return tuple(sorted((bid(ln.a), bid(ln.b)), reverse=True))


def populate_fdbs(net: Network) -> None:
    """Fill each switch's FDB with one entry per station on its segment."""
    segments: list[Segment] = getattr(net, "_segments", None) or run_spanning_tree(net)
    for seg in segments:
        stations = seg.station_macs()
        for sw in seg.switches:
            sw.fdb = {}
            sw.fdb[sw.management_mac()] = SELF_PORT
            # BFS over the tree from this switch, tracking the first-hop port.
            reach = _ports_toward(seg, sw)
            for mac, iface in stations.items():
                if mac == sw.management_mac():
                    continue
                point = _apoint(iface)
                port = reach.get(point)
                if port is not None:
                    sw.fdb[mac] = port


def _ports_toward(seg: Segment, sw: Switch) -> dict[object, int]:
    """Map each attachment point in the segment tree to the ifIndex of
    the ``sw`` port on the tree path toward it."""
    result: dict[object, int] = {}
    tree = seg.tree
    if sw not in tree:
        return result
    visited = {sw}
    q: deque[tuple[object, int]] = deque()
    for nbr in tree.neighbors(sw):
        ln: Link = tree.edges[sw, nbr]["link"]
        port_iface = ln.a if ln.a.device is sw else ln.b
        q.append((nbr, port_iface.index))
        visited.add(nbr)
        result[nbr] = port_iface.index
    while q:
        point, port = q.popleft()
        for nbr in tree.neighbors(point):
            if nbr in visited:
                continue
            visited.add(nbr)
            result[nbr] = port
            q.append((nbr, port))
    return result


def l2_path(net: Network, src: Interface, dst: Interface) -> list[Channel]:
    """Directed channels traversed from ``src`` to ``dst`` along the
    segment's spanning tree.  Both interfaces must be on one segment."""
    segments: list[Segment] = getattr(net, "_segments", None)
    if segments is None:
        raise TopologyError("network not frozen: no segments computed")
    ps, pd = _apoint(src), _apoint(dst)
    for seg in segments:
        if ps in seg.tree and pd in seg.tree:
            try:
                points = nx.shortest_path(seg.tree, ps, pd)
            except nx.NetworkXNoPath:
                continue
            channels: list[Channel] = []
            for a, b in zip(points, points[1:]):
                ln: Link = seg.tree.edges[a, b]["link"]
                # orient: transmit from the interface on the `a` side
                if _apoint(ln.a) is a:
                    channels.append(ln.channel_from(ln.a))
                else:
                    channels.append(ln.channel_from(ln.b))
            return channels
    if ps is pd:
        return []
    raise TopologyError(f"{src.fqname} and {dst.fqname} are not on one L2 segment")


def segment_of(net: Network, iface: Interface) -> Segment:
    """The L2 segment an interface belongs to."""
    segments: list[Segment] = getattr(net, "_segments", None)
    if segments is None:
        raise TopologyError("network not frozen: no segments computed")
    p = _apoint(iface)
    for seg in segments:
        if p in seg.tree:
            return seg
        # single unlinked interface: degenerate segment
        if isinstance(p, Interface) and p in seg.edge_ifaces:
            return seg
    raise TopologyError(f"{iface.fqname} is not on any segment")
