"""Deployment glue: wire a full Remos stack onto a simulated network.

This is the "Figure 2" of the reproduction: per site, a Bridge
Collector (where the LAN is switched), an SNMP Collector, and a
Benchmark Collector; one Master Collector with the directory; one
Modeler bound to the Master.  Helpers build the standard deployments:

* :func:`deploy_lan` — single-site deployment over a
  :class:`~repro.netsim.builders.SwitchedLan` or
  :class:`~repro.netsim.builders.HubLan` (Fig. 3 experiments).
* :func:`deploy_wan` — one site per
  :class:`~repro.netsim.builders.WanWorld` site, benchmark collectors
  fully peered (mirror/video experiments).
* :func:`deploy_remos` — the general form, from explicit
  :class:`SiteConfig` records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.common.errors import TopologyError
from repro.netsim.address import IPv4Address, IPv4Network
from repro.netsim.builders import HubLan, SwitchedLan, WanWorld
from repro.netsim.topology import Host, Network
from repro.snmp.agent import SnmpWorld, instrument_network
from repro.snmp.client import SnmpCostModel
from repro.collectors.base import RpcCostModel
from repro.collectors.benchmark_collector import BenchmarkCollector, BenchmarkConfig
from repro.collectors.bridge_collector import BridgeCollector
from repro.collectors.directory import CollectorDirectory
from repro.collectors.master import MasterCollector
from repro.collectors.snmp_collector import SnmpCollector, SnmpCollectorConfig
from repro.modeler.api import Modeler

log = obs.get_logger(__name__)


@dataclass
class SiteConfig:
    """Everything needed to stand up one site's collectors."""

    name: str
    #: address space this site's SNMP collector answers for
    domains: list[str]
    #: (subnet, gateway address) pairs for hosts in the site
    gateways: list[tuple[str, str]]
    #: border router address used to stitch sites together
    border_ip: str
    #: host the site's collectors run on
    collector_host: Host
    #: switch name -> management IP (empty = no bridge collector)
    switch_ips: dict[str, IPv4Address] = field(default_factory=dict)
    #: subnet the bridge collector covers (defaults to first domain)
    bridged_subnet: str | None = None
    #: additional bridged domains: subnet -> {switch name: management IP}
    #: (a campus site has one bridge collector per switched subnet)
    bridge_domains: dict[str, dict[str, IPv4Address]] = field(default_factory=dict)


@dataclass
class RemosDeployment:
    """Handles to every running component."""

    net: Network
    world: SnmpWorld
    directory: CollectorDirectory
    master: MasterCollector
    modeler: Modeler
    snmp_collectors: dict[str, SnmpCollector]
    bridge_collectors: dict[str, BridgeCollector]
    benchmarks: dict[str, BenchmarkCollector]
    #: wireless collectors, for deployments with basestations
    wireless_collectors: dict[str, "object"] = field(default_factory=dict)

    def session(self) -> "RemosSession":
        """The documented application entry point (see repro.session)."""
        from repro.session import RemosSession

        return RemosSession(self.modeler)

    def shard(self, config=None):
        """Replace the flat Master with a sharded Master hierarchy.

        Builds a :class:`~repro.collectors.sharding.ShardedMaster` over
        the existing directory (same collectors, same borders, same
        shared :class:`RpcCostModel` — so ``repro.faults.install`` arms
        every tier at once) and rebinds the Modeler to it.  Returns the
        new master.
        """
        from repro.collectors.sharding import build_sharded_master

        sharded = build_sharded_master(
            "master", self.net, self.directory,
            self.master.borders, self.master.rpc, config,
        )
        self.master = sharded
        self.modeler.master = sharded
        log.info("sharded master plane: %d shards", len(sharded.shards))
        return sharded

    def start_monitoring(self) -> None:
        """Begin periodic polling in every SNMP collector."""
        log.debug("starting monitoring in %d collectors", len(self.snmp_collectors))
        for c in self.snmp_collectors.values():
            c.start_monitoring()

    def start_benchmarks(self) -> None:
        """Begin periodic probing in every benchmark collector."""
        log.debug("starting %d benchmark collectors", len(self.benchmarks))
        for i, b in enumerate(sorted(self.benchmarks.values(), key=lambda b: b.site)):
            b.start_periodic(stagger_s=i * 1.0)

    def stop(self) -> None:
        for c in self.snmp_collectors.values():
            c.stop_monitoring()
        for b in self.benchmarks.values():
            b.stop_periodic()

    def enable_streaming_prediction(
        self, spec: str = "AR(16)", horizon: int = 10, min_history: int = 32
    ) -> list:
        """Attach streaming predictors to every SNMP collector (§2.3).

        Each polling sweep feeds the per-link predictors; predictive
        flow queries are then answered from the amortized fits instead
        of a client-server fit per query.  Returns the managers.
        """
        from repro.rps.streaming import StreamingPredictionManager

        managers = []
        for coll in self.snmp_collectors.values():
            if coll.streaming is None:
                managers.append(
                    StreamingPredictionManager(coll, spec, horizon, min_history)
                )
        return managers

    def attach_host_sensor(
        self,
        host: Host,
        spec: str = "AR(16)",
        rate_hz: float = 1.0,
        history_len: int = 600,
        horizon: int = 10,
    ):
        """Run an RPS host-load sensor + streaming predictor on a host.

        The host must already have a load source attached.  Returns the
        sensor; node queries through the Modeler pick it up
        automatically.
        """
        from repro.rps.predictor import StreamingPredictor
        from repro.rps.sensors import HostLoadSensor

        now = self.net.now
        dt = 1.0 / rate_hz
        warmup = np.array(
            [host.load(max(0.0, now - (history_len - k) * dt)) for k in range(history_len)]
        )
        predictor = StreamingPredictor(spec, warmup, horizon=horizon)
        sensor = HostLoadSensor(self.net, host, predictor, rate_hz)
        sensor.start()
        if not hasattr(self, "_host_sensors"):
            self._host_sensors: dict[str, HostLoadSensor] = {}
        self._host_sensors[str(host.ip)] = sensor
        return sensor

    def node_info_for(self, ip: str):
        """(current load, streaming predictor) for one host IP.

        Current load comes from the host's own reading (the sensor runs
        *on* the node, like /proc); the predictor exists only where a
        sensor was attached.
        """
        sensors = getattr(self, "_host_sensors", {})
        sensor = sensors.get(ip)
        iface = self.net.iface_for_ip(ip)
        if iface is None or not isinstance(iface.device, Host):
            return None, None
        load = iface.device.load(self.net.now)
        return load, (sensor.predictor if sensor is not None else None)

    def history_for_edge(self, a: str, b: str) -> np.ndarray | None:
        """Utilization history (bps, direction a->b) for a graph edge.

        Searches every SNMP collector's discovered links for the edge
        and returns the monitored rate series in the requested
        direction — the data a predictive flow query feeds to RPS.
        """
        for coll in self.snmp_collectors.values():
            for rec in coll._paths.values():
                for er in rec.edges:
                    if {er.a, er.b} != {a, b} or er.key is None:
                        continue
                    mon = coll.monitors.get(er.key)
                    if mon is None or not mon.ready:
                        continue
                    direction = "out" if er.owner_id == a else "in"
                    _, rates = mon.rate_history(direction)
                    return rates
        return None


def deploy_remos(
    net: Network,
    sites: list[SiteConfig],
    poll_interval_s: float = 5.0,
    snmp_cost: SnmpCostModel | None = None,
    rpc_cost: RpcCostModel | None = None,
    bench_config: BenchmarkConfig | None = None,
    community: str = "public",
    bridge_startup: bool = True,
    world: SnmpWorld | None = None,
    sharding=None,
) -> RemosDeployment:
    """Stand up the full Remos stack for the given sites.

    ``sharding`` (a :class:`~repro.collectors.sharding.ShardingConfig`)
    replaces the flat Master with a sharded hierarchy after wiring.
    """
    if not sites:
        raise ValueError("need at least one site")
    if world is None:
        world = instrument_network(net, community=community)
    directory = CollectorDirectory()
    snmp_collectors: dict[str, SnmpCollector] = {}
    bridge_collectors: dict[str, BridgeCollector] = {}
    benchmarks: dict[str, BenchmarkCollector] = {}
    borders: dict[str, IPv4Address] = {}

    for site in sites:
        source_ip = site.collector_host.ip
        bridges: dict[IPv4Network, BridgeCollector] = {}
        domains_to_bridge: dict[str, dict[str, IPv4Address]] = dict(site.bridge_domains)
        if site.switch_ips:
            domains_to_bridge.setdefault(
                site.bridged_subnet or site.domains[0], site.switch_ips
            )
        for k, (subnet_s, switch_ips) in enumerate(sorted(domains_to_bridge.items())):
            bc = BridgeCollector(
                f"bridge-{site.name}-{k}" if len(domains_to_bridge) > 1 else f"bridge-{site.name}",
                net, world, source_ip, switch_ips, community, snmp_cost,
            )
            if bridge_startup:
                bc.startup()
            bridge_collectors.setdefault(site.name, bc)
            bridges[IPv4Network(subnet_s)] = bc
        config = SnmpCollectorConfig(
            domains=[IPv4Network(d) for d in site.domains],
            gateways=[(IPv4Network(s), IPv4Address(g)) for s, g in site.gateways],
            poll_interval_s=poll_interval_s,
        )
        sc = SnmpCollector(
            f"snmp-{site.name}", net, world, source_ip, config,
            bridges, community, snmp_cost,
        )
        snmp_collectors[site.name] = sc
        directory.register(sc, [IPv4Network(d) for d in site.domains], site.name)
        borders[site.name] = IPv4Address(site.border_ip)

        bench = BenchmarkCollector(site.name, net, site.collector_host, bench_config)
        benchmarks[site.name] = bench
        directory.register_benchmark(bench)

    # fully peer the benchmark collectors
    site_names = sorted(benchmarks)
    for i, a in enumerate(site_names):
        for b in site_names[i + 1:]:
            benchmarks[a].add_peer(benchmarks[b])

    master = MasterCollector("master", net, directory, borders, rpc_cost)
    modeler = Modeler(master, net, rpc_cost)
    deployment = RemosDeployment(
        net, world, directory, master, modeler,
        snmp_collectors, bridge_collectors, benchmarks,
    )
    modeler.history_provider = deployment.history_for_edge
    modeler.node_info_provider = deployment.node_info_for
    if sharding is not None:
        deployment.shard(sharding)
    log.info(
        "deployed remos: %d sites, %d bridge collectors, %d benchmarks",
        len(sites), len(bridge_collectors), len(benchmarks),
    )
    return deployment


def deploy_lan(
    lan: SwitchedLan | HubLan,
    poll_interval_s: float = 5.0,
    snmp_cost: SnmpCostModel | None = None,
    bridge_startup: bool = True,
) -> RemosDeployment:
    """Single-site deployment for a bridged LAN (the Fig. 3 setting)."""
    gw_iface = next(i for i in lan.router.interfaces if i.ip is not None)
    site = SiteConfig(
        name="lan",
        domains=[lan.subnet],
        gateways=[(lan.subnet, str(gw_iface.ip))],
        border_ip=str(gw_iface.ip),
        collector_host=lan.hosts[0],
        switch_ips=(
            {sw.name: sw.management_ip for sw in getattr(lan, "switches", [])
             if sw.management_ip is not None}
            or ({lan.switch.name: lan.switch.management_ip}
                if isinstance(lan, HubLan) and lan.switch.management_ip else {})
        ),
        bridged_subnet=lan.subnet,
    )
    return deploy_remos(
        lan.net, [site], poll_interval_s, snmp_cost, bridge_startup=bridge_startup
    )


def deploy_wan(
    world: WanWorld,
    poll_interval_s: float = 5.0,
    snmp_cost: SnmpCostModel | None = None,
    bench_config: BenchmarkConfig | None = None,
    sharding=None,
) -> RemosDeployment:
    """One Remos site per WAN site; benchmark collectors fully peered.

    The benchmark endpoint at each site is the *last* host of the site
    so applications can use the first ones.
    """
    sites: list[SiteConfig] = []
    for name, site in sorted(world.sites.items()):
        lan_gw = next(
            i for i in site.router.interfaces
            if i.ip is not None and i.ip in _net_of(site.subnet)
        )
        transit_iface = next(
            i for i in site.router.interfaces
            if i.ip is not None and i.ip not in _net_of(site.subnet)
        )
        transit_subnet = transit_iface.network
        sites.append(
            SiteConfig(
                name=name,
                domains=[site.subnet, str(transit_subnet)],
                gateways=[(site.subnet, str(lan_gw.ip))],
                border_ip=str(lan_gw.ip),
                collector_host=site.hosts[-1],
                switch_ips=(
                    {site.switch.name: site.switch.management_ip}
                    if site.switch.management_ip is not None
                    else {}
                ),
                bridged_subnet=site.subnet,
            )
        )
    return deploy_remos(
        world.net, sites, poll_interval_s, snmp_cost,
        bench_config=bench_config, sharding=sharding,
    )


def deploy_wireless(
    wl,
    poll_interval_s: float = 5.0,
    snmp_cost: SnmpCostModel | None = None,
    location_monitor_s: float | None = 10.0,
) -> RemosDeployment:
    """Deployment over a :class:`~repro.netsim.builders.WirelessLan`.

    Adds a Wireless Collector scanning the basestations' association
    tables; ``location_monitor_s`` arms its periodic roaming monitor
    (None disables).
    """
    from repro.collectors.wireless_collector import WirelessCollector

    gw_iface = next(i for i in wl.router.interfaces if i.ip is not None)
    site = SiteConfig(
        name="wlan",
        domains=[wl.subnet],
        gateways=[(wl.subnet, str(gw_iface.ip))],
        border_ip=str(gw_iface.ip),
        collector_host=wl.wired_hosts[0],
        switch_ips=(
            {wl.switch.name: wl.switch.management_ip}
            if wl.switch.management_ip is not None
            else {}
        ),
        bridged_subnet=wl.subnet,
    )
    dep = deploy_remos(wl.net, [site], poll_interval_s, snmp_cost)
    wc = WirelessCollector(
        "wireless-wlan", wl.net, dep.world, wl.wired_hosts[0].ip,
        {bs.name: bs.management_ip for bs in wl.basestations
         if bs.management_ip is not None},
        cost=snmp_cost,
    )
    wc.scan()
    if location_monitor_s is not None:
        wl.net.engine.every(location_monitor_s, wc.monitor_tick)
    dep.wireless_collectors["wlan"] = wc
    return dep


def deploy_campus(
    campus,
    poll_interval_s: float = 5.0,
    snmp_cost: SnmpCostModel | None = None,
    bridge_startup: bool = True,
) -> RemosDeployment:
    """Single-site deployment over a multi-subnet campus.

    One SNMP collector owns the whole IP domain; each switched subnet
    gets its own Bridge Collector — the paper's "an SNMP Collector is
    assigned to monitor a particular network, generally an IP domain
    corresponding to a university or department".
    """
    domains = [s.subnet for s in campus.subnets]
    domains += [f"192.168.{100 + i}.0/30" for i in range(len(campus.subnets))]
    gateways = [(s.subnet, s.gateway_ip) for s in campus.subnets]
    bridge_domains = {
        s.subnet: {s.switch.name: s.switch.management_ip}
        for s in campus.subnets
        if s.switch.management_ip is not None
    }
    site = SiteConfig(
        name="campus",
        domains=domains,
        gateways=gateways,
        border_ip=campus.subnets[0].gateway_ip,
        collector_host=campus.subnets[0].hosts[0],
        bridge_domains=bridge_domains,
    )
    return deploy_remos(
        campus.net, [site], poll_interval_s, snmp_cost, bridge_startup=bridge_startup
    )


def auto_deploy(
    net: Network,
    name: str = "site",
    poll_interval_s: float = 5.0,
    snmp_cost: SnmpCostModel | None = None,
    bridge_startup: bool = True,
) -> RemosDeployment:
    """Deploy Remos over any network by inferring the site layout.

    One site covering every addressed subnet: gateways come from router
    interfaces, bridge collectors from switches with management
    addresses (grouped by subnet), and the collector runs on the first
    host.  Useful for topologies loaded from spec files
    (:mod:`repro.netsim.spec`), where no builder record exists.
    """
    from repro.netsim.topology import Switch

    subnets: dict[IPv4Network, IPv4Address] = {}
    for router in sorted(net.routers(), key=lambda r: r.name):
        for iface in router.interfaces:
            if iface.network is not None and iface.ip is not None:
                subnets.setdefault(iface.network, iface.ip)
    if not subnets:
        raise ValueError("auto_deploy needs at least one router-attached subnet")
    hosts = [h for h in net.hosts() if any(i.ip for i in h.interfaces)]
    if not hosts:
        raise ValueError("auto_deploy needs at least one addressed host")
    bridge_domains: dict[str, dict[str, IPv4Address]] = {}
    for sw in net.switches():
        if not isinstance(sw, Switch) or sw.management_ip is None:
            continue
        subnet = next(
            (s for s in subnets if sw.management_ip in s), None
        )
        if subnet is None:
            continue
        bridge_domains.setdefault(str(subnet), {})[sw.name] = sw.management_ip
    first_subnet = sorted(subnets)[0]
    site = SiteConfig(
        name=name,
        domains=[str(s) for s in sorted(subnets)],
        gateways=[(str(s), str(gw)) for s, gw in sorted(subnets.items())],
        border_ip=str(subnets[first_subnet]),
        collector_host=hosts[0],
        bridge_domains=bridge_domains,
    )
    return deploy_remos(
        net, [site], poll_interval_s, snmp_cost, bridge_startup=bridge_startup
    )


def _net_of(subnet: str) -> IPv4Network:
    return IPv4Network(subnet)
